package prefetch

import "ipcp/internal/memsys"

// MLOP is a multi-lookahead offset prefetcher in the spirit of
// Shakerinava et al.'s DPC-3 winner: per-page access maps score a range
// of offsets each epoch, and the top offsets (one per lookahead level)
// form the prefetch set applied to every trigger access.
type MLOP struct {
	// Levels is the number of lookahead levels = offsets selected.
	Levels int

	maps    []accessMap
	clock   uint64
	scores  map[int64]int
	epoch   int
	current []int64 // elected offsets
}

type accessMap struct {
	page  uint64
	bits  uint64
	lru   uint64
	valid bool
}

const (
	mlopMaxOffset = 16
	mlopEpochLen  = 256
	mlopMapCount  = 64
)

// NewMLOP returns the default 3-level configuration.
func NewMLOP() *MLOP {
	return &MLOP{
		Levels:  3,
		maps:    make([]accessMap, mlopMapCount),
		scores:  make(map[int64]int),
		current: []int64{1}, // optimistic next-line start
	}
}

// Name implements Prefetcher.
func (p *MLOP) Name() string { return "mlop" }

// Operate implements Prefetcher.
func (p *MLOP) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	page := memsys.PageNumber(addr)
	line := memsys.PageOffsetLine(addr)
	p.clock++

	m := p.findMap(page)
	// Score every candidate offset whose source line is already set in
	// this page's map (i.e. offset o would have predicted this
	// access).
	for o := int64(-mlopMaxOffset); o <= mlopMaxOffset; o++ {
		if o == 0 {
			continue
		}
		src := int64(line) - o
		if src < 0 || src >= memsys.LinesPerPage {
			continue
		}
		if m.bits&(1<<uint(src)) != 0 {
			p.scores[o]++
		}
	}
	m.bits |= 1 << uint(line)
	m.lru = p.clock

	p.epoch++
	if p.epoch >= mlopEpochLen {
		p.elect()
	}

	for _, o := range p.current {
		cand := memsys.Addr(int64(memsys.BlockNumber(addr))+o) << memsys.BlockBits
		if memsys.SamePage(addr, cand) {
			iss.Issue(Candidate{Addr: cand, Class: memsys.ClassNone})
		}
	}
}

// elect picks the top-scoring offsets, one per lookahead level.
func (p *MLOP) elect() {
	p.epoch = 0
	type kv struct {
		o int64
		s int
	}
	var best []kv
	for o, s := range p.scores {
		best = append(best, kv{o, s})
	}
	// Insertion sort by score desc, offset asc for determinism.
	for i := 1; i < len(best); i++ {
		for j := i; j > 0 && (best[j].s > best[j-1].s ||
			best[j].s == best[j-1].s && best[j].o < best[j-1].o); j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	p.current = p.current[:0]
	if len(best) == 0 {
		p.current = append(p.current, 1)
	}
	threshold := 0
	if len(best) > 0 {
		threshold = best[0].s / 4
	}
	for i := 0; i < len(best) && len(p.current) < p.Levels; i++ {
		if best[i].s <= threshold || best[i].s < 8 {
			break
		}
		p.current = append(p.current, best[i].o)
	}
	if len(p.current) == 0 {
		p.current = append(p.current, 1)
	}
	for o := range p.scores {
		delete(p.scores, o)
	}
}

func (p *MLOP) findMap(page uint64) *accessMap {
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.maps {
		m := &p.maps[i]
		if m.valid && m.page == page {
			return m
		}
		if !m.valid {
			victim, oldest = i, 0
		} else if m.lru < oldest {
			victim, oldest = i, m.lru
		}
	}
	p.maps[victim] = accessMap{page: page, valid: true, lru: p.clock}
	return &p.maps[victim]
}

// Offsets returns the currently elected offsets (testing).
func (p *MLOP) Offsets() []int64 { return append([]int64(nil), p.current...) }

// Fill implements Prefetcher.
func (p *MLOP) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *MLOP) Cycle(int64) {}

func init() {
	Register("mlop", func(Level) Prefetcher { return NewMLOP() })
}
