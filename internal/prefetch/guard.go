package prefetch

import (
	"fmt"
	"runtime/debug"

	"ipcp/internal/memsys"
	"ipcp/internal/telemetry"
)

// GuardConfig bounds a guarded prefetcher's behaviour. The defaults are
// deliberately loose — far beyond anything a healthy prefetcher does —
// so wrapping never perturbs a correct run; they exist to contain a
// buggy or hostile implementation, not to throttle a working one.
type GuardConfig struct {
	// MaxPerOperate caps candidates issued from one Operate call; the
	// largest legitimate burst (Bingo replaying a full 4KB footprint)
	// is 64 lines, well below the default of 256.
	MaxPerOperate int
	// MaxPageDistance caps how many pages a candidate may sit from its
	// triggering access; 0 leaves the distance unbounded. Hardware
	// spatial prefetchers are page-local (the paper clamps at the 4KB
	// boundary), but the temporal extension legitimately correlates
	// across the whole working set, so the default is unbounded and
	// strict configurations opt in.
	MaxPageDistance uint64
	// MaxStrikes is how many budget violations are tolerated before the
	// prefetcher is disabled (a panic disables immediately).
	MaxStrikes int
}

// DefaultGuardConfig returns the loose production bounds.
func DefaultGuardConfig() GuardConfig {
	return GuardConfig{MaxPerOperate: 256, MaxStrikes: 8}
}

// GuardStats counts a guard's interventions.
type GuardStats struct {
	Panics           uint64 // panics recovered (at most 1: the first disables)
	BudgetViolations uint64 // candidates rejected for violating a bound
	DroppedCalls     uint64 // Operate/Fill/Cycle calls skipped while disabled
}

// Guard wraps a Prefetcher and makes it fail-safe, the way hardware
// prefetchers are by construction: the worst a wrapped prefetcher can
// do is not prefetch. A panic in any hook, or repeated budget
// violations, permanently disables the inner prefetcher for the rest of
// the run — the simulation continues unprefetched at that level — and
// the trip is recorded in GuardStats and (when a tracer is attached) as
// an EvGuardTrip telemetry event.
//
// Guard deliberately does NOT implement telemetry.Introspector: whether
// the inner prefetcher exposes a snapshot must remain observable
// through type assertions, so callers unwrap via Unwrap first.
type Guard struct {
	inner Prefetcher
	level memsys.Level
	cfg   GuardConfig

	disabled bool
	reason   string
	strikes  int

	tr     *telemetry.Tracer
	trCore int

	// gi is the reusable budget-checking issuer Operate passes to the
	// inner prefetcher (avoids boxing a fresh one per access).
	gi guardIssuer
	// innerNext caches inner's NextEventer (nil when not implemented) —
	// NextEvent runs once per simulated cycle per cache.
	innerNext NextEventer

	Stats GuardStats
	// Stack holds the stack trace of the recovered panic, if any.
	Stack []byte
}

// NewGuard wraps inner for the given cache level with the default
// bounds. Wrapping the no-op prefetcher is pointless but harmless.
func NewGuard(inner Prefetcher, level memsys.Level) *Guard {
	return NewGuardConfigured(inner, level, DefaultGuardConfig())
}

// NewGuardConfigured wraps inner with explicit bounds. Non-positive
// fields fall back to the defaults.
func NewGuardConfigured(inner Prefetcher, level memsys.Level, cfg GuardConfig) *Guard {
	def := DefaultGuardConfig()
	if cfg.MaxPerOperate <= 0 {
		cfg.MaxPerOperate = def.MaxPerOperate
	}
	if cfg.MaxStrikes <= 0 {
		cfg.MaxStrikes = def.MaxStrikes
	}
	g := &Guard{inner: inner, level: level, cfg: cfg, trCore: -1}
	g.innerNext, _ = inner.(NextEventer)
	return g
}

// Unwrap returns the guarded prefetcher (telemetry type assertions go
// through here).
func (g *Guard) Unwrap() Prefetcher { return g.inner }

// Level returns the cache level the guard was built for.
func (g *Guard) Level() memsys.Level { return g.level }

// Disabled reports whether the guard has tripped, and why.
func (g *Guard) Disabled() (bool, string) { return g.disabled, g.reason }

// trip disables the inner prefetcher for the rest of the run.
func (g *Guard) trip(now int64, reason string) {
	if g.disabled {
		return
	}
	g.disabled = true
	g.reason = reason
	if g.tr != nil {
		g.tr.Emit(telemetry.Event{
			Cycle: now, Kind: telemetry.EvGuardTrip,
			Level: g.level, Core: g.trCore,
		})
	}
}

// recovered converts a panic in an inner hook into a trip.
func (g *Guard) recovered(now int64, hook string) {
	if r := recover(); r != nil {
		g.Stats.Panics++
		g.Stack = debug.Stack()
		g.trip(now, fmt.Sprintf("panic in %s.%s: %v", g.inner.Name(), hook, r))
	}
}

// strike records one budget violation; MaxStrikes of them trip the
// guard.
func (g *Guard) strike(now int64, what string) {
	g.Stats.BudgetViolations++
	g.strikes++
	if g.strikes >= g.cfg.MaxStrikes {
		g.trip(now, fmt.Sprintf("budget violations in %s (last: %s)", g.inner.Name(), what))
	}
}

// Name implements Prefetcher.
func (g *Guard) Name() string { return g.inner.Name() }

// Operate implements Prefetcher: forwards to the inner prefetcher with
// panic containment and a budget-checking issuer.
func (g *Guard) Operate(now int64, a *Access, iss Issuer) {
	if g.disabled {
		g.Stats.DroppedCalls++
		return
	}
	defer g.recovered(now, "Operate")
	// Reuse the embedded issuer: a fresh guardIssuer here would escape
	// into the Issuer interface and heap-allocate on every access. Safe
	// because Operate never re-enters the same guard (issuing a
	// candidate enqueues it; it is serviced on a later cycle).
	g.gi = guardIssuer{g: g, inner: iss, now: now, trigger: triggerAddr(a)}
	g.inner.Operate(now, a, &g.gi)
}

// triggerAddr picks the address space candidates are checked against:
// virtual where the prefetcher trains virtually (L1-D), else physical.
func triggerAddr(a *Access) memsys.Addr {
	if a.VAddr != 0 {
		return a.VAddr
	}
	return a.Addr
}

// Fill implements Prefetcher.
func (g *Guard) Fill(now int64, f *FillEvent) {
	if g.disabled {
		g.Stats.DroppedCalls++
		return
	}
	defer g.recovered(now, "Fill")
	g.inner.Fill(now, f)
}

// Cycle implements Prefetcher.
func (g *Guard) Cycle(now int64) {
	if g.disabled {
		return
	}
	defer g.recovered(now, "Cycle")
	g.inner.Cycle(now)
}

// SetTracer implements telemetry.Traceable: the guard keeps the tracer
// for its own trip events and forwards it to the inner prefetcher when
// that one is traceable too.
func (g *Guard) SetTracer(tr *telemetry.Tracer, core int) {
	g.tr = tr
	g.trCore = core
	if t, ok := g.inner.(telemetry.Traceable); ok {
		t.SetTracer(tr, core)
	}
}

// ResetStats implements telemetry.StatsResetter by forwarding; the
// guard's own counters survive the warmup boundary (a warmup trip is
// still a trip).
func (g *Guard) ResetStats() {
	if g.disabled {
		return
	}
	if r, ok := g.inner.(telemetry.StatsResetter); ok {
		r.ResetStats()
	}
}

// guardIssuer enforces the guard's budgets between the inner prefetcher
// and the cache's real issuer.
type guardIssuer struct {
	g       *Guard
	inner   Issuer
	now     int64
	trigger memsys.Addr
	issued  int
}

// Issue implements Issuer: candidates beyond the bounds are dropped and
// counted as violations; healthy candidates pass straight through.
func (gi *guardIssuer) Issue(c Candidate) bool {
	g := gi.g
	if g.disabled {
		return false
	}
	if gi.issued >= g.cfg.MaxPerOperate {
		g.strike(gi.now, fmt.Sprintf("more than %d candidates from one Operate", g.cfg.MaxPerOperate))
		return false
	}
	if g.cfg.MaxPageDistance > 0 && gi.trigger != 0 {
		tp, cp := memsys.PageNumber(gi.trigger), memsys.PageNumber(c.Addr)
		dist := tp - cp
		if cp > tp {
			dist = cp - tp
		}
		if dist > g.cfg.MaxPageDistance {
			g.strike(gi.now, fmt.Sprintf("candidate %d pages from trigger", dist))
			return false
		}
	}
	gi.issued++
	return gi.inner.Issue(c)
}

// Wrapper is implemented by pass-through prefetcher layers (the Guard,
// the audit recorder) so introspection can reach the real prefetcher
// underneath regardless of how many layers are stacked.
type Wrapper interface {
	Unwrap() Prefetcher
}

// Unwrapped returns p with any wrapper layers (Guard, audit recorder,
// ...) removed.
func Unwrapped(p Prefetcher) Prefetcher {
	for {
		w, ok := p.(Wrapper)
		if !ok {
			return p
		}
		p = w.Unwrap()
	}
}
