package prefetch

import "ipcp/internal/memsys"

// SPP is the Signature Path Prefetcher [Kim et al., MICRO 2016]: a
// per-page signature of recent deltas indexes a pattern table; path
// confidence (the product of per-delta probabilities along the
// speculative signature path) controls lookahead depth. A small
// global history register (GHR) carries the signature across page
// boundaries so a stream entering a fresh page resumes its path
// instead of retraining.
type SPP struct {
	st     []sppSTEntry
	pt     []sppPTEntry
	filter []uint64
	ghr    [sppGHRSize]sppGHREntry

	// Threshold is the path-confidence floor for issuing ([0,1]).
	Threshold float64
	// MaxDepth bounds the lookahead path length.
	MaxDepth int
}

// sppGHREntry remembers a signature whose speculative path ran off the
// end of a page, keyed by the offset it would enter the next page at.
type sppGHREntry struct {
	valid     bool
	sig       uint16
	lastDelta int
	offset    int // predicted entry offset in the next page
}

const sppGHRSize = 8

type sppSTEntry struct {
	tag        uint64
	lastOffset int
	sig        uint16
	valid      bool
}

type sppPTEntry struct {
	deltas [4]int8
	cDelta [4]uint8
	cSig   uint8
}

const (
	sppSTSize     = 256
	sppPTSize     = 512
	sppSigMask    = 0xfff
	sppFilterSize = 256
)

// NewSPP returns the standard configuration (threshold 0.25, depth 8).
func NewSPP() *SPP {
	return &SPP{
		st:        make([]sppSTEntry, sppSTSize),
		pt:        make([]sppPTEntry, sppPTSize),
		filter:    make([]uint64, sppFilterSize),
		Threshold: 0.25,
		MaxDepth:  8,
	}
}

// Name implements Prefetcher.
func (p *SPP) Name() string { return "spp" }

func sppSigHash(sig uint16) int { return int(sig) % sppPTSize }

func sppAdvance(sig uint16, delta int) uint16 {
	return (sig<<3 ^ uint16(delta)&0x3f) & sppSigMask
}

// Operate implements Prefetcher.
func (p *SPP) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	page := memsys.PageNumber(addr)
	offset := memsys.PageOffsetLine(addr)

	e := &p.st[page%sppSTSize]
	tag := page / sppSTSize
	if !e.valid || e.tag != tag {
		// Fresh page: bootstrap the signature from the GHR if a
		// cross-page path predicted this entry offset, and resume the
		// lookahead immediately.
		sig := uint16(0)
		hit := false
		for i := range p.ghr {
			g := &p.ghr[i]
			if g.valid && g.offset == offset {
				sig = sppAdvance(g.sig, g.lastDelta)
				g.valid = false
				hit = true
				break
			}
		}
		*e = sppSTEntry{tag: tag, lastOffset: offset, sig: sig, valid: true}
		if hit {
			p.lookahead(addr, offset, sig, iss)
		}
		return
	}
	delta := offset - e.lastOffset
	if delta == 0 {
		return
	}

	// Train PT[sig] with the observed delta.
	pt := &p.pt[sppSigHash(e.sig)]
	p.train(pt, delta)

	// Advance the signature and remember state.
	e.sig = sppAdvance(e.sig, delta)
	e.lastOffset = offset

	// Lookahead along the speculative path.
	p.lookahead(addr, offset, e.sig, iss)
}

// lookahead walks the speculative signature path from offset, issuing
// while the path confidence holds; a path running off the page parks
// its state in the GHR.
func (p *SPP) lookahead(addr memsys.Addr, offset int, sig uint16, iss Issuer) {
	conf := 1.0
	cur := offset
	for depth := 0; depth < p.MaxDepth; depth++ {
		pe := &p.pt[sppSigHash(sig)]
		d, prob := bestDelta(pe)
		if d == 0 {
			return
		}
		conf *= prob
		if conf < p.Threshold {
			return
		}
		cur += d
		if cur < 0 || cur >= memsys.LinesPerPage {
			// The path runs off the page: park it in the GHR so the
			// stream resumes when it enters the neighbouring page.
			p.ghrInsert(sppGHREntry{
				valid: true, sig: sig, lastDelta: d,
				offset: (cur + memsys.LinesPerPage) % memsys.LinesPerPage,
			})
			return
		}
		cand := memsys.BlockAlign(addr)&^memsys.Addr(memsys.PageSize-1) +
			memsys.Addr(cur)*memsys.BlockSize
		if !p.filtered(cand) {
			iss.Issue(Candidate{Addr: cand, Class: memsys.ClassNone})
		}
		sig = sppAdvance(sig, d)
	}
}

// train bumps delta's counter in the PT entry, evicting the weakest
// slot when full.
func (p *SPP) train(e *sppPTEntry, delta int) {
	if e.cSig >= 15 {
		// Periodic aging keeps probabilities adaptive.
		for i := range e.cDelta {
			e.cDelta[i] >>= 1
		}
		e.cSig >>= 1
	}
	e.cSig++
	weakest, weakVal := 0, uint8(255)
	for i := range e.deltas {
		if e.deltas[i] == int8(delta) {
			if e.cDelta[i] < 15 {
				e.cDelta[i]++
			}
			return
		}
		if e.cDelta[i] < weakVal {
			weakest, weakVal = i, e.cDelta[i]
		}
	}
	e.deltas[weakest] = int8(delta)
	e.cDelta[weakest] = 1
}

// bestDelta returns the highest-probability delta of a PT entry.
func bestDelta(e *sppPTEntry) (int, float64) {
	if e.cSig == 0 {
		return 0, 0
	}
	best, bestC := 0, uint8(0)
	for i := range e.deltas {
		if e.cDelta[i] > bestC && e.deltas[i] != 0 {
			best, bestC = int(e.deltas[i]), e.cDelta[i]
		}
	}
	return best, float64(bestC) / float64(e.cSig)
}

// ghrInsert records a cross-page path, replacing any entry with the
// same entry offset (round-robin otherwise).
func (p *SPP) ghrInsert(e sppGHREntry) {
	for i := range p.ghr {
		if !p.ghr[i].valid || p.ghr[i].offset == e.offset {
			p.ghr[i] = e
			return
		}
	}
	p.ghr[int(e.sig)%len(p.ghr)] = e
}

// filtered tracks recently issued prefetch blocks to suppress
// duplicates; it returns true when cand was already issued recently.
func (p *SPP) filtered(cand memsys.Addr) bool {
	b := memsys.BlockNumber(cand)
	slot := &p.filter[b%sppFilterSize]
	if *slot == b {
		return true
	}
	*slot = b
	return false
}

// Fill implements Prefetcher.
func (p *SPP) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *SPP) Cycle(int64) {}

func init() {
	Register("spp", func(Level) Prefetcher { return NewSPP() })
}
