package prefetch

import (
	"testing"

	"ipcp/internal/memsys"
)

// Conformance suite: every registered prefetcher must satisfy the
// contract the cache relies on, across a set of canonical access
// scenarios. These are behavioural floor checks, not quality checks.

func allNames() []string {
	var out []string
	for _, n := range Names() {
		if n == "none" {
			continue
		}
		out = append(out, n)
	}
	return out
}

// scenario drives a prefetcher with a deterministic access pattern.
type scenario struct {
	name string
	gen  func(i int) (ip, addr uint64)
}

var scenarios = []scenario{
	{"sequential", func(i int) (uint64, uint64) {
		return 0x400100, 0x10_0000 + uint64(i)*memsys.BlockSize
	}},
	{"stride4", func(i int) (uint64, uint64) {
		return 0x400200, 0x20_0000 + uint64(i)*4*memsys.BlockSize
	}},
	{"two-ips", func(i int) (uint64, uint64) {
		ip := uint64(0x400300 + (i%2)*0x40)
		return ip, 0x30_0000 + uint64(i/2)*memsys.BlockSize + uint64(i%2)*0x8000
	}},
	{"random", func(i int) (uint64, uint64) {
		x := uint64(i) * 2654435761
		return 0x400400 + x%16*4, 0x40_0000 + (x%4096)*memsys.BlockSize
	}},
	{"page-edge", func(i int) (uint64, uint64) {
		// Walk the last lines of successive pages.
		return 0x400500, 0x50_0000 + uint64(i)*memsys.PageSize + 62*memsys.BlockSize
	}},
}

func drive(p Prefetcher, sc scenario, n int, rec *recorder) {
	for i := 0; i < n; i++ {
		ip, addr := sc.gen(i)
		p.Operate(int64(i), &Access{
			Addr: addr, VAddr: addr, IP: ip, Type: memsys.Load, Hit: i%3 == 0,
		}, rec)
		if i%2 == 0 {
			p.Fill(int64(i), &FillEvent{Addr: memsys.BlockAlign(addr), VAddr: memsys.BlockAlign(addr)})
		}
		p.Cycle(int64(i))
	}
}

// TestConformanceNoPanics: every prefetcher survives every scenario.
func TestConformanceNoPanics(t *testing.T) {
	for _, name := range allNames() {
		for _, sc := range scenarios {
			name, sc := name, sc
			t.Run(name+"/"+sc.name, func(t *testing.T) {
				p, err := New(name, memsys.LevelL1D)
				if err != nil {
					t.Fatal(err)
				}
				drive(p, sc, 2000, &recorder{})
			})
		}
	}
}

// TestConformanceCandidatesAligned: issued candidates are always
// block-addressable and non-zero.
func TestConformanceCandidatesAligned(t *testing.T) {
	for _, name := range allNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, _ := New(name, memsys.LevelL1D)
			rec := &recorder{}
			for _, sc := range scenarios {
				drive(p, sc, 1500, rec)
			}
			for _, c := range rec.cands {
				if c.Addr == 0 {
					t.Fatal("zero candidate address")
				}
			}
		})
	}
}

// TestConformanceSequentialCoverage: every prefetcher must produce at
// least one forward candidate on a long unit-stride stream (the
// easiest pattern in existence).
func TestConformanceSequentialCoverage(t *testing.T) {
	for _, name := range allNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, _ := New(name, memsys.LevelL1D)
			rec := &recorder{}
			drive(p, scenarios[0], 4000, rec)
			forward := 0
			for _, c := range rec.cands {
				if c.Addr > 0x10_0000 {
					forward++
				}
			}
			if forward == 0 {
				t.Errorf("%s issued no forward candidates on a sequential stream", name)
			}
		})
	}
}

// TestConformanceRejectedIssueTolerated: a full prefetch queue
// (Issue → false) must not wedge any prefetcher.
func TestConformanceRejectedIssueTolerated(t *testing.T) {
	for _, name := range allNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, _ := New(name, memsys.LevelL1D)
			rec := &recorder{rejectAll: true}
			for _, sc := range scenarios {
				drive(p, sc, 1000, rec)
			}
			// And it still works once the queue frees up. The run must
			// be long enough for region-based prefetchers to re-learn
			// (Bingo stores footprints only on accumulation-table
			// evictions, which need >64 fresh regions).
			rec2 := &recorder{}
			drive(p, scenarios[0], 10000, rec2)
			if name != "nl-miss" && len(rec2.cands) == 0 {
				t.Errorf("%s wedged after queue-full backpressure", name)
			}
		})
	}
}

// TestConformanceDeterminism: identical instances fed identical
// accesses issue identical candidates.
func TestConformanceDeterminism(t *testing.T) {
	for _, name := range allNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() []Candidate {
				p, _ := New(name, memsys.LevelL1D)
				rec := &recorder{}
				for _, sc := range scenarios {
					drive(p, sc, 1200, rec)
				}
				return rec.cands
			}
			a, b := run(), run()
			if len(a) != len(b) {
				t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i].Addr != b[i].Addr {
					t.Fatalf("candidate %d differs: %#x vs %#x", i, a[i].Addr, b[i].Addr)
				}
			}
		})
	}
}
