package prefetch

import (
	"strings"
	"testing"

	"ipcp/internal/memsys"
	"ipcp/internal/telemetry"
)

// bomb panics on the Nth Operate call.
type bomb struct {
	Nil
	at, calls int
}

func (b *bomb) Name() string { return "bomb" }

func (b *bomb) Operate(now int64, a *Access, iss Issuer) {
	b.calls++
	if b.calls == b.at {
		panic("kaboom")
	}
	iss.Issue(Candidate{Addr: a.Addr + memsys.BlockSize})
}

// flood issues n candidates per Operate.
type flood struct {
	Nil
	n int
	// far places every candidate far from the trigger (for distance
	// tests).
	far bool
}

func (f *flood) Name() string { return "flood" }

func (f *flood) Operate(now int64, a *Access, iss Issuer) {
	for i := 1; i <= f.n; i++ {
		addr := a.Addr + memsys.Addr(i)*memsys.BlockSize
		if f.far {
			addr = a.Addr + memsys.Addr(i)*(1<<30)
		}
		iss.Issue(Candidate{Addr: addr})
	}
}

type sink struct{ n int }

func (s *sink) Issue(Candidate) bool { s.n++; return true }

func TestGuardRecoversPanicAndDisables(t *testing.T) {
	b := &bomb{at: 3}
	g := NewGuard(b, memsys.LevelL1D)
	var iss sink
	a := &Access{Addr: 0x1000}
	for i := 0; i < 10; i++ {
		g.Operate(int64(i), a, &iss)
	}
	if dis, reason := g.Disabled(); !dis {
		t.Fatal("guard did not trip on panic")
	} else if !strings.Contains(reason, "panic in bomb.Operate") {
		t.Errorf("trip reason = %q", reason)
	}
	if g.Stats.Panics != 1 {
		t.Errorf("Panics = %d, want 1", g.Stats.Panics)
	}
	if len(g.Stack) == 0 {
		t.Error("no stack captured")
	}
	// Calls 1 and 2 issued; the rest were dropped.
	if iss.n != 2 {
		t.Errorf("issued %d candidates, want 2", iss.n)
	}
	if g.Stats.DroppedCalls != 7 {
		t.Errorf("DroppedCalls = %d, want 7", g.Stats.DroppedCalls)
	}
}

func TestGuardCapsRunawayIssuer(t *testing.T) {
	f := &flood{n: 100_000}
	g := NewGuardConfigured(f, memsys.LevelL2, GuardConfig{MaxPerOperate: 256, MaxStrikes: 1})
	var iss sink
	g.Operate(0, &Access{Addr: 0x1000}, &iss)
	if iss.n != 256 {
		t.Errorf("issued %d candidates past the guard, want 256", iss.n)
	}
	if dis, _ := g.Disabled(); !dis {
		t.Error("guard did not trip after the violation")
	}
	if g.Stats.BudgetViolations == 0 {
		t.Error("no budget violations counted")
	}
}

func TestGuardPageDistanceOptIn(t *testing.T) {
	// Default config: distance unbounded — far candidates pass.
	f := &flood{n: 4, far: true}
	g := NewGuard(f, memsys.LevelL1D)
	var iss sink
	g.Operate(0, &Access{Addr: 0x1000}, &iss)
	if iss.n != 4 {
		t.Errorf("unbounded guard issued %d, want 4", iss.n)
	}

	// Strict config: far candidates are struck down.
	g2 := NewGuardConfigured(&flood{n: 4, far: true}, memsys.LevelL1D,
		GuardConfig{MaxPageDistance: 2, MaxStrikes: 100})
	var iss2 sink
	g2.Operate(0, &Access{Addr: 0x1000}, &iss2)
	if iss2.n != 0 {
		t.Errorf("strict guard issued %d far candidates, want 0", iss2.n)
	}
	if g2.Stats.BudgetViolations != 4 {
		t.Errorf("BudgetViolations = %d, want 4", g2.Stats.BudgetViolations)
	}
	if dis, _ := g2.Disabled(); dis {
		t.Error("guard tripped below MaxStrikes")
	}

	// Near candidates always pass under the strict config too.
	g3 := NewGuardConfigured(&flood{n: 4}, memsys.LevelL1D,
		GuardConfig{MaxPageDistance: 2, MaxStrikes: 100})
	var iss3 sink
	g3.Operate(0, &Access{Addr: 0x1000}, &iss3)
	if iss3.n != 4 {
		t.Errorf("strict guard issued %d near candidates, want 4", iss3.n)
	}
}

func TestGuardTripEmitsTelemetry(t *testing.T) {
	b := &bomb{at: 1}
	g := NewGuard(b, memsys.LevelL2)
	tr := telemetry.NewTracer(16)
	g.SetTracer(tr, 3)
	g.Operate(42, &Access{Addr: 0x1000}, &sink{})
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != telemetry.EvGuardTrip || ev.Cycle != 42 || ev.Core != 3 || ev.Level != memsys.LevelL2 {
		t.Errorf("trip event = %+v", ev)
	}
}

func TestUnwrapped(t *testing.T) {
	inner := &flood{n: 1}
	var p Prefetcher = NewGuard(NewGuard(inner, memsys.LevelL1D), memsys.LevelL1D)
	if got := Unwrapped(p); got != inner {
		t.Errorf("Unwrapped = %T, want the inner flood", got)
	}
	if got := Unwrapped(inner); got != inner {
		t.Error("Unwrapped on an unwrapped prefetcher must be identity")
	}
}

func TestGuardRegistryDuplicatePanics(t *testing.T) {
	const name = "guard-test-dup"
	Register(name, func(Level) Prefetcher { return Nil{} })
	defer delete(registry, name) // keep the registry clean for Names()-driven tests
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(name, func(Level) Prefetcher { return Nil{} })
}
