package prefetch

import "ipcp/internal/memsys"

// BOP is the Best-Offset Prefetcher [Michaud, HPCA 2016]: it scores a
// fixed list of candidate offsets against a recent-request table and
// prefetches with the winning offset until a new round elects a better
// one.
type BOP struct {
	offsets []int64
	scores  []int
	testIdx int
	round   int
	best    int64
	bestOK  bool

	rr     []uint64 // recent base block numbers
	rrMask uint64
}

// bopOffsets is the candidate list (a compact version of Michaud's
// 52-entry list; offsets with small prime factorizations).
var bopOffsets = []int64{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 30, 32,
	-1, -2, -3, -4, -6, -8}

const (
	bopScoreMax = 31
	bopRoundMax = 100
	bopBadScore = 3
)

// NewBOP returns a best-offset prefetcher with a 256-entry RR table.
func NewBOP() *BOP {
	return &BOP{
		offsets: bopOffsets,
		scores:  make([]int, len(bopOffsets)),
		best:    1,
		bestOK:  true,
		rr:      make([]uint64, 256),
		rrMask:  255,
	}
}

// Name implements Prefetcher.
func (p *BOP) Name() string { return "bop" }

func (p *BOP) rrInsert(block uint64) {
	p.rr[block&p.rrMask] = block
}

func (p *BOP) rrHit(block uint64) bool {
	return p.rr[block&p.rrMask] == block
}

// Operate implements Prefetcher.
func (p *BOP) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	// BOP triggers on misses and on hits to prefetched lines.
	if a.Hit && !a.HitPrefetched {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	block := memsys.BlockNumber(addr)

	// Learning: test the next offset in round-robin order.
	o := p.offsets[p.testIdx]
	if p.rrHit(uint64(int64(block) - o)) {
		p.scores[p.testIdx]++
	}
	p.testIdx++
	if p.testIdx == len(p.offsets) {
		p.testIdx = 0
		p.round++
	}
	// End of learning phase: elect the best offset.
	maxScore, maxIdx := 0, 0
	for i, s := range p.scores {
		if s > maxScore {
			maxScore, maxIdx = s, i
		}
	}
	if maxScore >= bopScoreMax || p.round >= bopRoundMax {
		p.best = p.offsets[maxIdx]
		p.bestOK = maxScore >= bopBadScore
		for i := range p.scores {
			p.scores[i] = 0
		}
		p.round = 0
	}

	if p.bestOK {
		cand := memsys.Addr(int64(block)+p.best) << memsys.BlockBits
		if memsys.SamePage(addr, cand) {
			iss.Issue(Candidate{Addr: cand, Class: memsys.ClassNone})
		}
	}
}

// Fill implements Prefetcher: completed fills feed the RR table. As in
// Michaud's design, a prefetched fill of X inserts the base address
// X − D (the trigger a perfect offset would have fired from); a demand
// fill inserts X itself.
func (p *BOP) Fill(now int64, f *FillEvent) {
	addr := f.Addr
	if f.VAddr != 0 {
		addr = f.VAddr
	}
	base := int64(memsys.BlockNumber(addr))
	if f.Prefetch {
		base -= p.best
	}
	if base >= 0 && memsys.SamePage(addr, memsys.Addr(base)<<memsys.BlockBits) {
		p.rrInsert(uint64(base))
	}
}

// Cycle implements Prefetcher.
func (p *BOP) Cycle(int64) {}

func init() {
	Register("bop", func(Level) Prefetcher { return NewBOP() })
}
