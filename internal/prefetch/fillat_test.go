package prefetch

import (
	"testing"

	"ipcp/internal/memsys"
)

func TestFillAtOverridesLevel(t *testing.T) {
	inner := NewNextLine()
	w := FillAt{Inner: inner, Level: memsys.LevelL2}
	rec := &recorder{}
	w.Operate(0, &Access{Addr: 0x5000, VAddr: 0x5000, IP: 1, Type: memsys.Load}, rec)
	if len(rec.cands) == 0 {
		t.Fatal("wrapped prefetcher issued nothing")
	}
	for _, c := range rec.cands {
		if c.FillLevel != memsys.LevelL2 {
			t.Errorf("FillLevel = %v, want L2", c.FillLevel)
		}
	}
	if w.Name() != "nl@L2" {
		t.Errorf("Name = %q", w.Name())
	}
	// The other hooks pass through without panicking.
	w.Fill(0, &FillEvent{Addr: 0x5000})
	w.Cycle(1)
}
