// Package prefetch defines the hardware-prefetcher interface the cache
// hierarchy exposes, plus the registry used by the CLIs and the
// experiment harness to construct prefetchers by name.
//
// The hook model follows ChampSim's: a prefetcher attached to a cache
// is invoked on every read access handled by that cache (demand loads,
// RFOs, code reads, and prefetch requests arriving from the level
// above — the latter carry the L1→L2 IPCP metadata), and on every
// block fill. Prefetch candidates are issued through the Issuer the
// cache passes with each access.
package prefetch

import (
	"fmt"
	"math"
	"sort"

	"ipcp/internal/memsys"
)

// Candidate is one prefetch a prefetcher wants issued.
type Candidate struct {
	// Addr is a byte address in the cache's native address space:
	// virtual at the L1-D (the paper's IPCP trains on virtual
	// addresses), physical at the L2 and below.
	Addr memsys.Addr
	// IP is the triggering instruction pointer; it travels with the
	// prefetch request so lower-level prefetchers can attribute the
	// request (the paper: "the IP of the request is passed to the
	// L2").
	IP memsys.Addr
	// FillLevel bounds how far up the block is installed. Zero means
	// "this cache's own level".
	FillLevel memsys.Level
	// Class tags the candidate with its IPCP class (ClassNone for
	// non-IPCP prefetchers).
	Class memsys.PrefetchClass
	// Meta is the encoded 9-bit L1→L2 metadata payload, if any.
	Meta uint16
}

// Issuer accepts prefetch candidates. Issue reports whether the
// candidate was accepted into the prefetch queue (false: queue full or
// untranslatable address — the candidate is dropped, as real hardware
// would).
type Issuer interface {
	Issue(c Candidate) bool
}

// Access describes one read access observed by a cache, passed to the
// attached prefetcher's Operate hook.
type Access struct {
	// Addr is the physical byte address; VAddr the virtual one (zero
	// below the L1 for prefetch-generated requests with no virtual
	// origin).
	Addr  memsys.Addr
	VAddr memsys.Addr
	// IP is the triggering instruction pointer (zero if unknown).
	IP memsys.Addr
	// Type is the access type (Load, RFO, CodeRead, or Prefetch for
	// requests arriving from the level above).
	Type memsys.AccessType
	// Hit reports whether the access hit in this cache.
	Hit bool
	// Meta carries the IPCP metadata of an arriving prefetch request.
	Meta uint16
	// HitPrefetched reports that the access hit a line brought in by a
	// prefetch that had not been demanded yet (a "useful prefetch"
	// event — filters like PPF train on it).
	HitPrefetched bool
	// HitClass is the IPCP class of that prefetched line.
	HitClass memsys.PrefetchClass
}

// FillEvent describes one block installation, passed to Fill.
type FillEvent struct {
	Addr     memsys.Addr // physical block address
	VAddr    memsys.Addr // virtual block address if known
	Set, Way int
	Prefetch bool
	Class    memsys.PrefetchClass
	Evicted  memsys.Addr // physical address of the victim block, 0 if none
	// EvictedUnusedPrefetch reports that the victim was a prefetched
	// line never demanded — a "useless prefetch" training event.
	EvictedUnusedPrefetch bool
}

// Prefetcher is the per-cache prefetching hook. Implementations must be
// single-threaded; the simulator never calls them concurrently.
type Prefetcher interface {
	// Name identifies the prefetcher (for stats and CLI output).
	Name() string
	// Operate observes one access and may issue candidates via iss.
	Operate(now int64, a *Access, iss Issuer)
	// Fill observes one block installation.
	Fill(now int64, f *FillEvent)
	// Cycle is clocked once per simulated cycle (for epoch logic).
	Cycle(now int64)
}

// NoEvent is the NextEvent return value meaning "no self-scheduled
// work": the prefetcher's Cycle hook is a no-op until some external
// input (an Operate or Fill call) arrives.
const NoEvent = int64(math.MaxInt64)

// NextEventer is optionally implemented by prefetchers whose Cycle hook
// does periodic work (epoch counters, delayed-release queues). NextEvent
// returns the earliest cycle > now at which Cycle must run to preserve
// bit-identical behaviour, or NoEvent if Cycle is a pure no-op until the
// prefetcher next observes an access or fill. The fast-forwarding
// scheduler treats a prefetcher that does NOT implement this interface
// conservatively: its cache is clocked every cycle.
type NextEventer interface {
	NextEvent(now int64) int64
}

// Nil is a no-op prefetcher, used where a level has prefetching
// disabled.
type Nil struct{}

func (Nil) Name() string                   { return "none" }
func (Nil) Operate(int64, *Access, Issuer) {}
func (Nil) Fill(int64, *FillEvent)         {}
func (Nil) Cycle(int64)                    {}
func (Nil) NextEvent(int64) int64          { return NoEvent }

// --- Registry ---------------------------------------------------------

// Level describes where a prefetcher is being constructed so factories
// can size or parametrize themselves (e.g. IPCP differs at L1 vs L2).
type Level = memsys.Level

// Factory builds a prefetcher for the given cache level.
type Factory func(level Level) Prefetcher

var registry = map[string]Factory{}

// Register adds a named prefetcher factory. It panics on duplicates so
// wiring mistakes surface at init time.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("prefetch: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs a registered prefetcher by name. The name "none" (or
// empty) yields the no-op prefetcher.
func New(name string, level Level) (Prefetcher, error) {
	if name == "" || name == "none" {
		return Nil{}, nil
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown prefetcher %q (known: %v)", name, Names())
	}
	return f(level), nil
}

// Names returns the sorted registered prefetcher names.
func Names() []string {
	names := make([]string, 0, len(registry)+1)
	names = append(names, "none")
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
