package prefetch

import "ipcp/internal/memsys"

// IPStride is the classic per-IP constant-stride prefetcher [Fu et al.,
// MICRO 1992]: a 64-entry direct-mapped table tracks the last block
// touched by each IP and a 2-bit confidence counter; once confident,
// it prefetches Degree blocks ahead along the learned stride.
type IPStride struct {
	Degree  int
	entries []ipStrideEntry
	mask    uint64
}

type ipStrideEntry struct {
	tag       uint64
	lastBlock uint64
	stride    int64
	conf      uint8
	valid     bool
}

// NewIPStride returns the standard 64-entry, degree-3 configuration.
func NewIPStride() *IPStride { return NewIPStrideSized(64, 3) }

// NewIPStrideSized returns an IP-stride prefetcher with the given table
// size (power of two) and degree.
func NewIPStrideSized(entries, degree int) *IPStride {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("prefetch: IP-stride table size must be a power of two")
	}
	return &IPStride{
		Degree:  degree,
		entries: make([]ipStrideEntry, entries),
		mask:    uint64(entries - 1),
	}
}

// Name implements Prefetcher.
func (p *IPStride) Name() string { return "ipstride" }

// Operate implements Prefetcher.
func (p *IPStride) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() || a.IP == 0 {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	block := memsys.BlockNumber(addr)
	idx := (a.IP >> 2) & p.mask
	tag := (a.IP >> 2) >> 6
	e := &p.entries[idx]
	if !e.valid || e.tag != tag {
		*e = ipStrideEntry{tag: tag, lastBlock: block, valid: true}
		return
	}
	stride := int64(block) - int64(e.lastBlock)
	if stride == 0 {
		return // same block; no training signal
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		}
		if e.conf == 0 {
			e.stride = stride
		}
	}
	e.lastBlock = block
	if e.conf < 2 || e.stride == 0 {
		return
	}
	for k := 1; k <= p.Degree; k++ {
		cand := memsys.Addr(int64(block)+int64(k)*e.stride) << memsys.BlockBits
		if !memsys.SamePage(addr, cand) {
			return
		}
		iss.Issue(Candidate{Addr: cand, Class: memsys.ClassCS})
	}
}

// Fill implements Prefetcher.
func (p *IPStride) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *IPStride) Cycle(int64) {}

func init() {
	Register("ipstride", func(Level) Prefetcher { return NewIPStride() })
}
