package prefetch

import "ipcp/internal/memsys"

// TSKID is a lightweight rendition of the T-SKID DPC-3 prefetcher: an
// IP-stride core augmented with timekeeping — it records the observed
// inter-access interval of each IP and delays issuing the prefetch so
// the block arrives just before its predicted use instead of being
// evicted from the small L1 while waiting (the paper's cactusBSSN
// discussion). It uses a large table, reflecting T-SKID's >50KB
// budget.
type TSKID struct {
	Degree  int
	entries []tskidEntry
	mask    uint64

	// delayed holds scheduled prefetches awaiting their release cycle;
	// due buffers released ones until the next Operate call provides
	// an Issuer (the cache exposes issuing only at access time).
	delayed []tskidPending
	due     []memsys.Addr
}

type tskidEntry struct {
	tag       uint64
	lastBlock uint64
	lastCycle int64
	interval  int64
	stride    int64
	conf      uint8
	valid     bool
}

type tskidPending struct {
	at   int64
	addr memsys.Addr
}

// NewTSKID returns a 1024-entry, degree-4 configuration.
func NewTSKID() *TSKID {
	return &TSKID{
		Degree:  4,
		entries: make([]tskidEntry, 1024),
		mask:    1023,
	}
}

// Name implements Prefetcher.
func (p *TSKID) Name() string { return "tskid" }

// Operate implements Prefetcher.
func (p *TSKID) Operate(now int64, a *Access, iss Issuer) {
	// Flush prefetches whose release time has arrived.
	for _, d := range p.due {
		iss.Issue(Candidate{Addr: d, Class: memsys.ClassNone})
	}
	p.due = p.due[:0]

	if !a.Type.IsDemand() || a.IP == 0 {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	block := memsys.BlockNumber(addr)
	idx := (a.IP >> 2) & p.mask
	tag := (a.IP >> 2) >> 10
	e := &p.entries[idx]
	if !e.valid || e.tag != tag {
		*e = tskidEntry{tag: tag, lastBlock: block, lastCycle: now, valid: true}
		return
	}
	stride := int64(block) - int64(e.lastBlock)
	interval := now - e.lastCycle
	e.lastCycle = now
	if stride == 0 {
		return
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
		// Exponential smoothing of the inter-access interval.
		if e.interval == 0 {
			e.interval = interval
		} else {
			e.interval = (e.interval*3 + interval) / 4
		}
	} else {
		if e.conf > 0 {
			e.conf--
		}
		if e.conf == 0 {
			e.stride = stride
			e.interval = interval
		}
	}
	e.lastBlock = block
	if e.conf < 2 || e.stride == 0 {
		return
	}
	// Timekeeping: prefetch for the k-th future access is released at
	// now + k*interval − leadTime, so it lands just in time.
	const leadTime = 300 // ≈ DRAM latency in cycles
	for k := 1; k <= p.Degree; k++ {
		cand := memsys.Addr(int64(block)+int64(k)*e.stride) << memsys.BlockBits
		if !memsys.SamePage(addr, cand) {
			return
		}
		release := now + int64(k)*e.interval - leadTime
		if release <= now {
			iss.Issue(Candidate{Addr: cand, Class: memsys.ClassNone})
			continue
		}
		if len(p.delayed) < 64 {
			p.delayed = append(p.delayed, tskidPending{at: release, addr: cand})
		}
	}
}

// Fill implements Prefetcher.
func (p *TSKID) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher: release due delayed prefetches.
func (p *TSKID) Cycle(now int64) {
	if len(p.delayed) == 0 {
		return
	}
	rest := p.delayed[:0]
	for _, d := range p.delayed {
		if d.at <= now {
			p.due = append(p.due, d.addr)
		} else {
			rest = append(rest, d)
		}
	}
	p.delayed = rest
}

func init() {
	Register("tskid", func(Level) Prefetcher { return NewTSKID() })
}
