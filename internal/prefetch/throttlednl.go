package prefetch

import "ipcp/internal/memsys"

// ThrottledNL is the DPC-3 "enhancing" companion prefetcher the paper
// pairs with SPP+PPF at the L2: a next-line prefetcher at the L1-D
// that measures its own accuracy and goes quiet when next-line is the
// wrong model for the access stream, re-probing occasionally so it can
// come back in streaming phases.
type ThrottledNL struct {
	// On gates issuing; the accuracy window flips it.
	on bool

	fills  uint64
	useful uint64
	misses uint64 // exploration counter while off
}

const (
	tnlWindow      = 128
	tnlOnThreshold = 0.35
	tnlProbeEvery  = 16
)

// NewThrottledNL returns the throttled next-line prefetcher.
func NewThrottledNL() *ThrottledNL { return &ThrottledNL{on: true} }

// Name implements Prefetcher.
func (p *ThrottledNL) Name() string { return "throttled-nl" }

// Operate implements Prefetcher.
func (p *ThrottledNL) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	if a.HitPrefetched {
		p.useful++
	}
	if a.Hit {
		return
	}
	p.misses++
	// While throttled, keep probing sparsely so the accuracy window
	// still fills and streaming phases re-enable us.
	if !p.on && p.misses%tnlProbeEvery != 0 {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	cand := memsys.BlockAlign(addr) + memsys.BlockSize
	if memsys.SamePage(addr, cand) {
		iss.Issue(Candidate{Addr: cand, IP: a.IP, Class: memsys.ClassNL})
	}
}

// Fill implements Prefetcher: close the accuracy window every
// tnlWindow prefetch fills.
func (p *ThrottledNL) Fill(now int64, f *FillEvent) {
	if !f.Prefetch {
		return
	}
	p.fills++
	if p.fills < tnlWindow {
		return
	}
	acc := float64(p.useful) / float64(p.fills)
	p.on = acc >= tnlOnThreshold
	p.fills, p.useful = 0, 0
}

// Cycle implements Prefetcher.
func (p *ThrottledNL) Cycle(int64) {}

// Enabled reports the gate state (testing).
func (p *ThrottledNL) Enabled() bool { return p.on }

func init() {
	Register("throttled-nl", func(Level) Prefetcher { return NewThrottledNL() })
}
