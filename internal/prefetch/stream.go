package prefetch

import "ipcp/internal/memsys"

// Stream is a POWER4-style stream prefetcher [Tendler et al. 2002]: a
// small table of detected sequential streams (ascending or
// descending); each confirmed stream runs a prefetch window Depth
// blocks ahead of the demand point.
type Stream struct {
	Depth   int
	streams []streamEntry
	clock   uint64
}

type streamEntry struct {
	lastBlock uint64
	dir       int64 // +1 / -1
	confirmed int
	lru       uint64
	valid     bool
}

// NewStream returns a 16-stream, depth-4 prefetcher.
func NewStream() *Stream { return &Stream{Depth: 4, streams: make([]streamEntry, 16)} }

// Name implements Prefetcher.
func (p *Stream) Name() string { return "stream" }

// Operate implements Prefetcher.
func (p *Stream) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	block := memsys.BlockNumber(addr)
	p.clock++

	// Match against existing streams: the access continues a stream if
	// it lands within 2 blocks of the expected next block.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		delta := int64(block) - int64(s.lastBlock)
		if s.dir > 0 && delta >= 1 && delta <= 2 || s.dir < 0 && delta <= -1 && delta >= -2 {
			s.lastBlock = block
			s.lru = p.clock
			if s.confirmed < 4 {
				s.confirmed++
			}
			if s.confirmed >= 2 {
				for k := 1; k <= p.Depth; k++ {
					cand := memsys.Addr(int64(block)+int64(k)*s.dir) << memsys.BlockBits
					if !memsys.SamePage(addr, cand) {
						break
					}
					iss.Issue(Candidate{Addr: cand, Class: memsys.ClassNone})
				}
			}
			return
		}
		// An access adjacent in the other direction flips a young
		// stream.
		if s.confirmed == 0 && (delta == 1 || delta == -1) {
			s.dir = delta
			s.lastBlock = block
			s.confirmed = 1
			s.lru = p.clock
			return
		}
	}

	// Allocate: replace the LRU stream.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lru < oldest {
			victim, oldest = i, p.streams[i].lru
		}
	}
	p.streams[victim] = streamEntry{lastBlock: block, dir: 1, lru: p.clock, valid: true}
}

// Fill implements Prefetcher.
func (p *Stream) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *Stream) Cycle(int64) {}

func init() {
	Register("stream", func(Level) Prefetcher { return NewStream() })
}
