package prefetch

import "ipcp/internal/memsys"

// Bingo is the spatial footprint prefetcher of Bakhshalipour et al.
// [HPCA 2019]: per-region footprints are recorded while a region is
// active and stored in one history table under a long event
// (PC+Address); lookups fall back from the long event to the short
// event (PC+Offset) within the same hashed set, fusing SMS's multiple
// tables into one. On the first access to a region the predicted
// footprint is prefetched wholesale.
type Bingo struct {
	regionBits int // log2 region size in bytes

	at      []bingoAT
	pht     []bingoPHT
	phtSets int
	phtWays int
	clock   uint64

	// pending holds footprint candidates that did not fit the prefetch
	// queue at trigger time; real hardware streams a 32-line footprint
	// out over many cycles rather than dropping it.
	pending []Candidate
}

type bingoAT struct {
	region uint64
	pc     uint64
	offset int
	bits   uint64
	lru    uint64
	valid  bool
}

type bingoPHT struct {
	longTag uint64 // hash of PC+Address
	short   uint64 // hash of PC+Offset
	bits    uint64
	lru     uint64
	valid   bool
}

const bingoATSize = 64

// NewBingo returns a Bingo with the given history capacity in entries.
// ~2K entries ≈ the paper's 48KB-tuned variant; 6K ≈ the original
// 119KB configuration.
func NewBingo(histEntries int) *Bingo {
	ways := 8
	sets := histEntries / ways
	if sets <= 0 {
		sets = 1
	}
	// Round sets to a power of two.
	s := 1
	for s < sets {
		s <<= 1
	}
	return &Bingo{
		regionBits: 11, // 2KB regions
		at:         make([]bingoAT, bingoATSize),
		pht:        make([]bingoPHT, s*ways),
		phtSets:    s,
		phtWays:    ways,
	}
}

// Name implements Prefetcher.
func (p *Bingo) Name() string { return "bingo" }

func (p *Bingo) regionOf(addr memsys.Addr) (region uint64, line int) {
	region = uint64(addr) >> p.regionBits
	line = int(addr>>memsys.BlockBits) & (1<<(p.regionBits-memsys.BlockBits) - 1)
	return
}

func (p *Bingo) linesPerRegion() int { return 1 << (p.regionBits - memsys.BlockBits) }

func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Operate implements Prefetcher.
func (p *Bingo) Operate(now int64, a *Access, iss Issuer) {
	// Drain queued footprint candidates first (a few per access).
	for n := 0; n < 4 && len(p.pending) > 0; n++ {
		if !iss.Issue(p.pending[0]) {
			break
		}
		p.pending = p.pending[1:]
	}
	if len(p.pending) == 0 {
		p.pending = nil
	}
	if !a.Type.IsDemand() {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	region, line := p.regionOf(addr)
	p.clock++

	// Active region: accumulate the footprint.
	for i := range p.at {
		e := &p.at[i]
		if e.valid && e.region == region {
			e.bits |= 1 << uint(line)
			e.lru = p.clock
			return
		}
	}

	// Trigger access: evict an AT entry (learning its footprint),
	// allocate the new region, and predict.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.at {
		if !p.at[i].valid {
			victim, oldest = i, 0
			break
		}
		if p.at[i].lru < oldest {
			victim, oldest = i, p.at[i].lru
		}
	}
	if v := &p.at[victim]; v.valid {
		p.store(v)
	}
	p.at[victim] = bingoAT{
		region: region, pc: a.IP, offset: line,
		bits: 1 << uint(line), lru: p.clock, valid: true,
	}

	// Predict the footprint for the new region.
	long := hash64(a.IP<<12 ^ uint64(addr)>>memsys.BlockBits)
	short := hash64(a.IP<<6 ^ uint64(line))
	bits, ok := p.find(long, short)
	if !ok {
		return
	}
	base := memsys.Addr(region) << p.regionBits
	for l := 0; l < p.linesPerRegion(); l++ {
		if l == line || bits&(1<<uint(l)) == 0 {
			continue
		}
		cand := Candidate{Addr: base + memsys.Addr(l)*memsys.BlockSize, IP: a.IP}
		if !iss.Issue(cand) && len(p.pending) < 256 {
			p.pending = append(p.pending, cand)
		}
	}
}

// store records a finished region's footprint under its trigger events.
func (p *Bingo) store(e *bingoAT) {
	trigAddr := memsys.Addr(e.region)<<p.regionBits + memsys.Addr(e.offset)*memsys.BlockSize
	long := hash64(e.pc<<12 ^ uint64(trigAddr)>>memsys.BlockBits)
	short := hash64(e.pc<<6 ^ uint64(e.offset))
	set := int(short % uint64(p.phtSets))
	base := set * p.phtWays
	// Reuse a matching long entry, else the LRU way.
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+p.phtWays; i++ {
		w := &p.pht[i]
		if w.valid && w.longTag == long {
			victim = i
			break
		}
		if !w.valid {
			victim, oldest = i, 0
		} else if w.lru < oldest {
			victim, oldest = i, w.lru
		}
	}
	p.clock++
	p.pht[victim] = bingoPHT{longTag: long, short: short, bits: e.bits, lru: p.clock, valid: true}
}

// find looks up a footprint: long event first, falling back to the
// most recent short-event match.
func (p *Bingo) find(long, short uint64) (uint64, bool) {
	set := int(short % uint64(p.phtSets))
	base := set * p.phtWays
	var bestShort *bingoPHT
	for i := base; i < base+p.phtWays; i++ {
		w := &p.pht[i]
		if !w.valid {
			continue
		}
		if w.longTag == long {
			w.lru = p.clock
			return w.bits, true
		}
		if w.short == short && (bestShort == nil || w.lru > bestShort.lru) {
			bestShort = w
		}
	}
	if bestShort != nil {
		bestShort.lru = p.clock
		return bestShort.bits, true
	}
	return 0, false
}

// Fill implements Prefetcher.
func (p *Bingo) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *Bingo) Cycle(int64) {}

func init() {
	Register("bingo", func(Level) Prefetcher { return NewBingo(2048) })
	Register("bingo119", func(Level) Prefetcher { return NewBingo(6144) })
}
