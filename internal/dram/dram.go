// Package dram models the main-memory controller: one or more DDR
// channels, each with banks, an open-row policy, FR-FCFS-style
// scheduling, and a hard data-bus bandwidth limit. Timing follows
// DDR4-1600 scaled to CPU cycles (4 GHz core, as in the paper's
// Table II).
package dram

import (
	"fmt"
	"math"

	"ipcp/internal/memsys"
)

// Config describes the memory system.
type Config struct {
	// Channels must be a power of two (1 for single-core, 2 for
	// multi-core in the paper).
	Channels int
	// BanksPerChannel must be a power of two.
	BanksPerChannel int
	// RowBytes is the row-buffer size per bank.
	RowBytes int

	// Timing in CPU cycles.
	TRP, TRCD, TCAS int
	// BurstCycles is the data-bus occupancy of one 64-byte transfer;
	// it sets the per-channel bandwidth ceiling:
	//   bandwidth = 64 B * cpuHz / BurstCycles.
	BurstCycles int

	// QueueSize bounds each channel's read and write queues.
	QueueSize int
}

// DefaultConfig returns the paper's DDR4-1600 single-channel
// configuration at a 4 GHz core clock: 12.8 GB/s per channel
// (64 B / 20 cycles / 4 GHz), tRP = tRCD = tCAS = 11 ns ≈ 44 cycles.
func DefaultConfig(channels int) Config {
	return Config{
		Channels:        channels,
		BanksPerChannel: 8,
		RowBytes:        8192,
		TRP:             44,
		TRCD:            44,
		TCAS:            44,
		BurstCycles:     20,
		QueueSize:       64,
	}
}

// WithBandwidthGBps returns a copy of c with BurstCycles set so each
// channel provides the given bandwidth at a 4 GHz core clock.
func (c Config) WithBandwidthGBps(gbps float64) Config {
	// cycles = 64 B * 4e9 cyc/s / (gbps * 1e9 B/s)
	cycles := int(64 * 4 / gbps)
	if cycles < 1 {
		cycles = 1
	}
	c.BurstCycles = cycles
	return c
}

// Stats aggregates controller counters.
type Stats struct {
	Reads, Writes                    uint64
	RowHits, RowMisses, RowConflicts uint64
	BusBusyCycles                    uint64
	Cycles                           uint64
	ReadQueueFullRejects             uint64
	WriteQueueFullRejects            uint64
}

// BytesTransferred returns total data moved.
func (s *Stats) BytesTransferred() uint64 { return (s.Reads + s.Writes) * memsys.BlockSize }

// BusUtilization returns the fraction of cycles the data bus was busy.
func (s *Stats) BusUtilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BusBusyCycles) / float64(s.Cycles)
}

type bank struct {
	openRow   uint64
	rowValid  bool
	busyUntil int64
}

type pending struct {
	req     *memsys.Request
	born    int64
	isWrite bool
}

type channel struct {
	banks     []bank
	readQ     []pending
	writeQ    []pending
	busFreeAt int64
	// drainWrites flips the scheduler into write-drain mode when the
	// write queue is nearly full or there are no reads.
	drainWrites bool
}

// Controller is the memory controller; it implements memsys.Sink and
// calls each completed read's ReturnTo.
type Controller struct {
	cfg   Config
	chans []channel

	chanMask uint64
	bankMask uint64
	colBits  uint
	// nowApprox timestamps arrivals for the starvation cap (updated
	// each Cycle).
	nowApprox int64
	// pool recycles writeback requests once they are scheduled.
	pool  *memsys.RequestPool
	Stats Stats
}

// New validates cfg and returns a Controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Channels <= 0 || cfg.Channels&(cfg.Channels-1) != 0 {
		return nil, fmt.Errorf("dram: channels must be a positive power of two, got %d", cfg.Channels)
	}
	if cfg.BanksPerChannel <= 0 || cfg.BanksPerChannel&(cfg.BanksPerChannel-1) != 0 {
		return nil, fmt.Errorf("dram: banks must be a positive power of two, got %d", cfg.BanksPerChannel)
	}
	if cfg.RowBytes < memsys.BlockSize {
		return nil, fmt.Errorf("dram: row smaller than a block")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	c := &Controller{
		cfg:      cfg,
		chans:    make([]channel, cfg.Channels),
		chanMask: uint64(cfg.Channels - 1),
		bankMask: uint64(cfg.BanksPerChannel - 1),
	}
	blocksPerRow := cfg.RowBytes / memsys.BlockSize
	for 1<<c.colBits < blocksPerRow {
		c.colBits++
	}
	for i := range c.chans {
		c.chans[i].banks = make([]bank, cfg.BanksPerChannel)
		// Queues never exceed QueueSize; reserving it up front keeps the
		// steady state free of append growth.
		c.chans[i].readQ = make([]pending, 0, cfg.QueueSize)
		c.chans[i].writeQ = make([]pending, 0, cfg.QueueSize)
	}
	return c, nil
}

// SetRequestPool attaches the system-wide request free list (nil keeps
// plain allocation).
func (c *Controller) SetRequestPool(p *memsys.RequestPool) { c.pool = p }

// decode maps a physical block address onto (channel, bank, row).
// Layout from LSB: channel | column | bank | row, so consecutive
// blocks stripe across channels and consecutive rows across banks.
func (c *Controller) decode(addr memsys.Addr) (ch, bk int, row uint64) {
	bn := memsys.BlockNumber(addr)
	ch = int(bn & c.chanMask)
	bn >>= uint(trailingBits(c.chanMask))
	bn >>= c.colBits // column within row
	bk = int(bn & c.bankMask)
	row = bn >> uint(trailingBits(c.bankMask))
	return
}

func trailingBits(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// --- memsys.Sink --------------------------------------------------------

// AddRead enqueues a demand or forwarded read.
func (c *Controller) AddRead(r *memsys.Request) bool { return c.add(r, false) }

// AddPrefetch enqueues a prefetch read (same queue; FR-FCFS decides).
func (c *Controller) AddPrefetch(r *memsys.Request) bool { return c.add(r, false) }

// AddWrite enqueues a writeback.
func (c *Controller) AddWrite(r *memsys.Request) bool { return c.add(r, true) }

func (c *Controller) add(r *memsys.Request, write bool) bool {
	ch, _, _ := c.decode(r.Addr)
	cn := &c.chans[ch]
	if write {
		if len(cn.writeQ) >= c.cfg.QueueSize {
			c.Stats.WriteQueueFullRejects++
			return false
		}
		cn.writeQ = append(cn.writeQ, pending{req: r, born: c.nowApprox, isWrite: true})
		return true
	}
	if len(cn.readQ) >= c.cfg.QueueSize {
		c.Stats.ReadQueueFullRejects++
		return false
	}
	cn.readQ = append(cn.readQ, pending{req: r, born: c.nowApprox})
	return true
}

// Cycle advances the controller one CPU cycle.
func (c *Controller) Cycle(now int64) {
	c.nowApprox = now
	c.Stats.Cycles++
	busy := false
	for i := range c.chans {
		if c.cycleChannel(now, &c.chans[i]) {
			busy = true
		}
	}
	if busy {
		c.Stats.BusBusyCycles++
	}
}

// cycleChannel tries to start one transaction on the channel and
// reports whether its data bus is busy this cycle.
func (c *Controller) cycleChannel(now int64, cn *channel) bool {
	// Write-drain policy: drain when writes pile past 3/4 full, stop
	// once below 1/4; also drain opportunistically when no reads wait.
	if len(cn.writeQ) >= c.cfg.QueueSize*3/4 {
		cn.drainWrites = true
	}
	if len(cn.writeQ) <= c.cfg.QueueSize/4 {
		cn.drainWrites = false
	}

	// Commands pipeline ahead of the data bus: a new transaction may
	// start while the bus is still transferring, as long as the bus
	// backlog stays within two bursts (so row activations overlap
	// with data transfer, as in a real controller).
	if cn.busFreeAt-now < int64(2*c.cfg.BurstCycles) {
		var q *[]pending
		if cn.drainWrites || (len(cn.readQ) == 0 && len(cn.writeQ) > 0) {
			q = &cn.writeQ
		} else if len(cn.readQ) > 0 {
			q = &cn.readQ
		}
		if q != nil {
			if idx := c.pick(now, cn, *q); idx >= 0 {
				c.start(now, cn, q, idx)
			}
		}
	}
	return cn.busFreeAt > now
}

// pick implements FR-FCFS with a starvation cap: the oldest row-buffer
// hit on a ready bank wins, unless the oldest ready request has waited
// past the cap — row-missing random traffic must not starve behind an
// endless row-hit stream (real controllers bound reordering the same
// way).
func (c *Controller) pick(now int64, cn *channel, q []pending) int {
	const starvationCap = 1500 // cycles
	oldest, firstHit := -1, -1
	for i := range q {
		_, bk, row := c.decode(q[i].req.Addr)
		b := &cn.banks[bk]
		if b.busyUntil > now {
			continue
		}
		if firstHit < 0 && b.rowValid && b.openRow == row {
			firstHit = i
		}
		if oldest < 0 {
			oldest = i
		}
	}
	if oldest >= 0 && now-q[oldest].born > starvationCap {
		return oldest
	}
	if firstHit >= 0 {
		return firstHit
	}
	return oldest
}

// start launches the transaction at q[idx] and removes it.
func (c *Controller) start(now int64, cn *channel, q *[]pending, idx int) {
	p := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)

	_, bk, row := c.decode(p.req.Addr)
	b := &cn.banks[bk]
	// tCCD: successive column reads to an open row pipeline; the bank
	// only stays unavailable through precharge/activate.
	const tCCD = 8
	var access, bankBusy int64
	switch {
	case b.rowValid && b.openRow == row:
		access = int64(c.cfg.TCAS)
		bankBusy = tCCD
		c.Stats.RowHits++
	case !b.rowValid:
		access = int64(c.cfg.TRCD + c.cfg.TCAS)
		bankBusy = int64(c.cfg.TRCD) + tCCD
		c.Stats.RowMisses++
	default:
		access = int64(c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS)
		bankBusy = int64(c.cfg.TRP+c.cfg.TRCD) + tCCD
		c.Stats.RowConflicts++
	}
	b.openRow, b.rowValid = row, true

	dataStart := now + access
	if dataStart < cn.busFreeAt {
		dataStart = cn.busFreeAt
	}
	done := dataStart + int64(c.cfg.BurstCycles)
	b.busyUntil = now + bankBusy
	cn.busFreeAt = done

	if p.isWrite {
		c.Stats.Writes++
		c.pool.Put(p.req) // writebacks terminate here
		return
	}
	c.Stats.Reads++
	if p.req.ReturnTo != nil {
		p.req.ReturnTo.ReturnData(done, p.req)
	}
}

// NextEvent reports the earliest future cycle at which clocking the
// controller could change state: any queued request keeps it awake
// (scheduling decisions are per-cycle); with every queue empty, Cycle
// only bumps the per-cycle counters, which AccountSkip replays.
func (c *Controller) NextEvent(now int64) int64 {
	for i := range c.chans {
		cn := &c.chans[i]
		if len(cn.readQ) > 0 || len(cn.writeQ) > 0 {
			return now + 1
		}
	}
	return math.MaxInt64
}

// AccountSkip replays the per-cycle statistics for the skipped cycles
// [from, to). Skips only happen with every queue empty (see NextEvent),
// where each clocked cycle would count Cycles, count BusBusyCycles
// while a tail transfer drains, and clear the write-drain flag.
func (c *Controller) AccountSkip(from, to int64) {
	c.Stats.Cycles += uint64(to - from)
	var maxBusFree int64
	for i := range c.chans {
		cn := &c.chans[i]
		cn.drainWrites = false
		if cn.busFreeAt > maxBusFree {
			maxBusFree = cn.busFreeAt
		}
	}
	if maxBusFree > from {
		end := maxBusFree
		if end > to {
			end = to
		}
		c.Stats.BusBusyCycles += uint64(end - from)
	}
}

// ResetStats zeroes the counters (end of warmup).
func (c *Controller) ResetStats() { c.Stats = Stats{} }

// QueueOccupancy returns total queued reads and writes (testing).
func (c *Controller) QueueOccupancy() (reads, writes int) {
	for i := range c.chans {
		reads += len(c.chans[i].readQ)
		writes += len(c.chans[i].writeQ)
	}
	return
}
