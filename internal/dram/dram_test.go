package dram

import (
	"testing"
	"testing/quick"

	"ipcp/internal/memsys"
)

type sink struct {
	done []int64 // completion cycles
}

func (s *sink) ReturnData(now int64, r *memsys.Request) { s.done = append(s.done, now) }

func read(addr memsys.Addr, to memsys.Receiver) *memsys.Request {
	return &memsys.Request{Addr: addr, Type: memsys.Load, ReturnTo: to}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Channels: 0, BanksPerChannel: 8, RowBytes: 8192},
		{Channels: 3, BanksPerChannel: 8, RowBytes: 8192},
		{Channels: 2, BanksPerChannel: 0, RowBytes: 8192},
		{Channels: 2, BanksPerChannel: 8, RowBytes: 16},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig(1)); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestSingleReadLatency(t *testing.T) {
	c, _ := New(DefaultConfig(1))
	s := &sink{}
	if !c.AddRead(read(0x1000, s)) {
		t.Fatal("AddRead rejected")
	}
	for now := int64(0); now < 500; now++ {
		c.Cycle(now)
	}
	if len(s.done) != 1 {
		t.Fatalf("completed %d, want 1", len(s.done))
	}
	cfg := DefaultConfig(1)
	want := int64(cfg.TRCD + cfg.TCAS + cfg.BurstCycles)
	if s.done[0] != want {
		t.Errorf("first read completed at %d, want %d (closed-row access)", s.done[0], want)
	}
	if c.Stats.RowMisses != 1 {
		t.Errorf("RowMisses = %d, want 1", c.Stats.RowMisses)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	c, _ := New(DefaultConfig(1))
	s := &sink{}
	// Two reads in the same row, then one in a different row of the
	// same bank.
	c.AddRead(read(0x0, s))
	c.AddRead(read(0x40, s))
	for now := int64(0); now < 1000; now++ {
		c.Cycle(now)
	}
	if c.Stats.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1", c.Stats.RowHits)
	}
	hitLat := s.done[1] - s.done[0]

	// Different row, same channel/bank: rows differ in the high bits.
	rowStride := memsys.Addr(DefaultConfig(1).RowBytes * DefaultConfig(1).BanksPerChannel)
	c.AddRead(read(rowStride, s))
	for now := int64(1000); now < 2000; now++ {
		c.Cycle(now)
	}
	if c.Stats.RowConflicts != 1 {
		t.Errorf("RowConflicts = %d, want 1", c.Stats.RowConflicts)
	}
	confLat := s.done[2] - 1000
	if hitLat >= confLat {
		t.Errorf("row hit (%d) not faster than conflict (%d)", hitLat, confLat)
	}
}

func TestBandwidthCeiling(t *testing.T) {
	cfg := DefaultConfig(1)
	c, _ := New(cfg)
	s := &sink{}
	// Saturate with row-hit reads: completions must be spaced at least
	// BurstCycles apart (one burst per channel at a time).
	for i := 0; i < 32; i++ {
		c.AddRead(read(memsys.Addr(i*memsys.BlockSize), s))
	}
	for now := int64(0); now < 5000; now++ {
		c.Cycle(now)
	}
	if len(s.done) != 32 {
		t.Fatalf("completed %d, want 32", len(s.done))
	}
	for i := 1; i < len(s.done); i++ {
		if gap := s.done[i] - s.done[i-1]; gap < int64(cfg.BurstCycles) {
			t.Fatalf("completions %d and %d only %d cycles apart (burst %d)",
				i-1, i, gap, cfg.BurstCycles)
		}
	}
}

func TestTwoChannelsDoubleThroughput(t *testing.T) {
	finish := func(channels int) int64 {
		c, _ := New(DefaultConfig(channels))
		s := &sink{}
		for i := 0; i < 64; i++ {
			c.AddRead(read(memsys.Addr(i*memsys.BlockSize), s))
		}
		now := int64(0)
		for len(s.done) < 64 && now < 100000 {
			c.Cycle(now)
			now++
		}
		last := int64(0)
		for _, d := range s.done {
			if d > last {
				last = d
			}
		}
		return last
	}
	one, two := finish(1), finish(2)
	if two >= one {
		t.Errorf("2-channel finish (%d) not faster than 1-channel (%d)", two, one)
	}
	if float64(one)/float64(two) < 1.5 {
		t.Errorf("2-channel speedup only %.2fx, want near 2x", float64(one)/float64(two))
	}
}

func TestWriteDrain(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.QueueSize = 8
	c, _ := New(cfg)
	for i := 0; i < 8; i++ {
		w := &memsys.Request{Addr: memsys.Addr(i * memsys.BlockSize), Type: memsys.Writeback}
		if !c.AddWrite(w) {
			t.Fatalf("write %d rejected", i)
		}
	}
	for now := int64(0); now < 5000; now++ {
		c.Cycle(now)
	}
	if c.Stats.Writes != 8 {
		t.Errorf("drained %d writes, want 8", c.Stats.Writes)
	}
	if _, w := c.QueueOccupancy(); w != 0 {
		t.Errorf("write queue not empty: %d", w)
	}
}

func TestQueueFullRejects(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.QueueSize = 2
	c, _ := New(cfg)
	s := &sink{}
	if !c.AddRead(read(0, s)) || !c.AddRead(read(64, s)) {
		t.Fatal("first two reads rejected")
	}
	if c.AddRead(read(128, s)) {
		t.Error("third read accepted with full queue")
	}
	if c.Stats.ReadQueueFullRejects != 1 {
		t.Errorf("ReadQueueFullRejects = %d, want 1", c.Stats.ReadQueueFullRejects)
	}
}

func TestDecodeMapsAllChannelsAndBanks(t *testing.T) {
	cfg := DefaultConfig(2)
	c, _ := New(cfg)
	chans := map[int]bool{}
	banks := map[int]bool{}
	for i := 0; i < 4096; i++ {
		ch, bk, _ := c.decode(memsys.Addr(i * memsys.BlockSize))
		chans[ch] = true
		banks[bk] = true
		if ch < 0 || ch >= cfg.Channels || bk < 0 || bk >= cfg.BanksPerChannel {
			t.Fatalf("decode out of range: ch=%d bk=%d", ch, bk)
		}
	}
	if len(chans) != cfg.Channels {
		t.Errorf("only %d/%d channels used", len(chans), cfg.Channels)
	}
	if len(banks) != cfg.BanksPerChannel {
		t.Errorf("only %d/%d banks used", len(banks), cfg.BanksPerChannel)
	}
}

func TestDecodeStable(t *testing.T) {
	c, _ := New(DefaultConfig(2))
	f := func(addr uint64) bool {
		c1, b1, r1 := c.decode(addr)
		c2, b2, r2 := c.decode(addr)
		// Same block must always decode identically, and addresses in
		// the same block must agree.
		c3, b3, r3 := c.decode(memsys.BlockAlign(addr))
		return c1 == c2 && b1 == b2 && r1 == r2 && c1 == c3 && b1 == b3 && r1 == r3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEveryReadCompletesProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		if len(addrs) > 48 {
			addrs = addrs[:48]
		}
		c, _ := New(DefaultConfig(1))
		s := &sink{}
		accepted := 0
		for _, a := range addrs {
			if c.AddRead(read(memsys.Addr(a)*64, s)) {
				accepted++
			}
		}
		for now := int64(0); now < 50000; now++ {
			c.Cycle(now)
		}
		return len(s.done) == accepted && c.Stats.Reads == uint64(accepted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWithBandwidthGBps(t *testing.T) {
	low := DefaultConfig(1).WithBandwidthGBps(3.2)
	high := DefaultConfig(1).WithBandwidthGBps(25)
	if low.BurstCycles <= high.BurstCycles {
		t.Errorf("3.2GB/s burst (%d) should exceed 25GB/s burst (%d)",
			low.BurstCycles, high.BurstCycles)
	}
	if low.BurstCycles != 80 {
		t.Errorf("3.2GB/s burst = %d, want 80", low.BurstCycles)
	}
}

func TestBusUtilizationBounded(t *testing.T) {
	c, _ := New(DefaultConfig(1))
	s := &sink{}
	for i := 0; i < 16; i++ {
		c.AddRead(read(memsys.Addr(i*64), s))
	}
	for now := int64(0); now < 2000; now++ {
		c.Cycle(now)
	}
	u := c.Stats.BusUtilization()
	if u < 0 || u > 1 {
		t.Errorf("utilization out of range: %f", u)
	}
	if u == 0 {
		t.Error("utilization zero despite traffic")
	}
	if got := c.Stats.BytesTransferred(); got != 16*64 {
		t.Errorf("BytesTransferred = %d, want %d", got, 16*64)
	}
}
