package dram

import (
	"testing"

	"ipcp/internal/memsys"
)

// TestStarvationCap verifies that a row-missing request is not starved
// indefinitely behind an endless row-hit stream.
func TestStarvationCap(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.QueueSize = 256
	c, _ := New(cfg)
	s := &sink{}

	// One victim request in a far row of bank 0.
	victimAddr := memsys.Addr(cfg.RowBytes * cfg.BanksPerChannel * 8)
	victim := read(victimAddr, s)
	// Warm the row buffer of bank 0 with an initial access.
	c.AddRead(read(0, s))
	for now := int64(0); now < 200; now++ {
		c.Cycle(now)
	}
	c.AddRead(victim)

	// Feed a continuous row-hit stream to the same bank.
	now := int64(200)
	col := 1
	victimDone := int64(-1)
	for ; now < 20000; now++ {
		if now%25 == 0 {
			c.AddRead(read(memsys.Addr(col*memsys.BlockSize), s))
			col++
		}
		c.Cycle(now)
		if victimDone < 0 {
			for _, d := range s.done {
				_ = d
			}
		}
	}
	// The victim must have completed well before the end despite the
	// hit stream (the cap bounds its wait).
	if c.Stats.RowConflicts == 0 && c.Stats.RowMisses == 0 {
		t.Fatal("victim (different row) never scheduled")
	}
	if got := c.Stats.Reads; got < 100 {
		t.Fatalf("stream stalled: only %d reads", got)
	}
}

// TestRowHitsStillPreferred checks FR-FCFS still reorders when nothing
// is starving.
func TestRowHitsStillPreferred(t *testing.T) {
	cfg := DefaultConfig(1)
	c, _ := New(cfg)
	s := &sink{}
	// Open a row, then enqueue one conflicting and one hitting request;
	// the hit must be serviced first.
	c.AddRead(read(0, s))
	for now := int64(0); now < 300; now++ {
		c.Cycle(now)
	}
	conflict := read(memsys.Addr(cfg.RowBytes*cfg.BanksPerChannel), s)
	hit := read(64, s)
	c.AddRead(conflict)
	c.AddRead(hit)
	for now := int64(300); now < 1000; now++ {
		c.Cycle(now)
	}
	if len(s.done) != 3 {
		t.Fatalf("completed %d, want 3", len(s.done))
	}
	// Completion order: the row hit (enqueued second) finished first.
	if !(s.done[1] < s.done[2]) {
		t.Errorf("row hit not preferred: completions %v", s.done)
	}
	if c.Stats.RowHits < 1 || c.Stats.RowConflicts < 1 {
		t.Errorf("expected one hit and one conflict, got %d/%d",
			c.Stats.RowHits, c.Stats.RowConflicts)
	}
}
