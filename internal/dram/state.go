package dram

import "fmt"

// Snapshot/restore support. The controller is only captured at
// quiescence — empty read/write queues on every channel — leaving pure
// timing state: per-bank open rows and busy horizons, per-channel bus
// availability and drain mode, and the counters.

// BankState captures one bank's row buffer and availability.
type BankState struct {
	OpenRow   uint64
	RowValid  bool
	BusyUntil int64
}

// ChannelState captures one channel.
type ChannelState struct {
	Banks       []BankState
	BusFreeAt   int64
	DrainWrites bool
}

// ControllerState captures a quiescent controller.
type ControllerState struct {
	Channels []ChannelState
	Stats    Stats
}

// Quiescent reports whether every channel's queues are empty.
func (c *Controller) Quiescent() bool {
	r, w := c.QueueOccupancy()
	return r == 0 && w == 0
}

// CaptureState captures the controller. It must be quiescent.
func (c *Controller) CaptureState() (ControllerState, error) {
	if !c.Quiescent() {
		r, w := c.QueueOccupancy()
		return ControllerState{}, fmt.Errorf("dram: not quiescent (reads=%d writes=%d)", r, w)
	}
	s := ControllerState{Channels: make([]ChannelState, len(c.chans)), Stats: c.Stats}
	for i := range c.chans {
		cn := &c.chans[i]
		cs := ChannelState{
			Banks:       make([]BankState, len(cn.banks)),
			BusFreeAt:   cn.busFreeAt,
			DrainWrites: cn.drainWrites,
		}
		for b := range cn.banks {
			cs.Banks[b] = BankState{
				OpenRow:   cn.banks[b].openRow,
				RowValid:  cn.banks[b].rowValid,
				BusyUntil: cn.banks[b].busyUntil,
			}
		}
		s.Channels[i] = cs
	}
	return s, nil
}

// RestoreState overwrites a freshly constructed controller (same
// Config) with the captured state. now re-seats the arrival timestamp
// approximation at the restored cycle.
func (c *Controller) RestoreState(s ControllerState, now int64) error {
	if len(s.Channels) != len(c.chans) {
		return fmt.Errorf("dram: channel-count mismatch (%d vs %d)", len(s.Channels), len(c.chans))
	}
	for i := range c.chans {
		cn := &c.chans[i]
		cs := &s.Channels[i]
		if len(cs.Banks) != len(cn.banks) {
			return fmt.Errorf("dram: bank-count mismatch on channel %d", i)
		}
		for b := range cn.banks {
			cn.banks[b] = bank{
				openRow:   cs.Banks[b].OpenRow,
				rowValid:  cs.Banks[b].RowValid,
				busyUntil: cs.Banks[b].BusyUntil,
			}
		}
		cn.busFreeAt = cs.BusFreeAt
		cn.drainWrites = cs.DrainWrites
		cn.readQ = cn.readQ[:0]
		cn.writeQ = cn.writeQ[:0]
	}
	c.nowApprox = now
	c.Stats = s.Stats
	return nil
}
