package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 1 {
		t.Errorf("Geomean(nil) = %f", g)
	}
	if g := Geomean([]float64{2, 8}); !almost(g, 4) {
		t.Errorf("Geomean(2,8) = %f, want 4", g)
	}
	if g := Geomean([]float64{1, 1, 1}); !almost(g, 1) {
		t.Errorf("Geomean(1,1,1) = %f", g)
	}
	if g := Geomean([]float64{0, 4}); math.IsNaN(g) || math.IsInf(g, 0) {
		t.Errorf("Geomean with zero produced %f", g)
	}
}

func TestGeomeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		lo, hi := math.Inf(1), 0.0
		for _, x := range raw {
			x = math.Abs(x)
			// Restrict to a range where exp(log(x)) cannot overflow.
			if x < 1e-100 || x > 1e100 || math.IsNaN(x) {
				continue
			}
			xs = append(xs, x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 1}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ws, 1.0) {
		t.Errorf("WeightedSpeedup = %f, want 1.0", ws)
	}
	n, err := NormalizedWeightedSpeedup([]float64{2, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(n, 1.0) {
		t.Errorf("NormalizedWeightedSpeedup = %f, want 1.0", n)
	}
}

func TestWeightedSpeedupLengthMismatch(t *testing.T) {
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch did not return an error")
	}
	if _, err := NormalizedWeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("normalized length mismatch did not return an error")
	}
}

func TestCoverage(t *testing.T) {
	if c := Coverage(100, 40); !almost(c, 0.6) {
		t.Errorf("Coverage = %f, want 0.6", c)
	}
	if c := Coverage(100, 120); !almost(c, -0.2) {
		t.Errorf("negative coverage = %f, want -0.2", c)
	}
	if c := Coverage(0, 10); c != 0 {
		t.Errorf("zero baseline coverage = %f", c)
	}
}

func TestOverPrediction(t *testing.T) {
	if o := OverPrediction(100, 60, 200); !almost(o, 0.2) {
		t.Errorf("OverPrediction = %f, want 0.2", o)
	}
	if o := OverPrediction(10, 20, 100); o != 0 {
		t.Errorf("clamped over-prediction = %f, want 0", o)
	}
	if o := OverPrediction(5, 1, 0); o != 0 {
		t.Errorf("zero-baseline over-prediction = %f", o)
	}
}

func TestSpeedupAndRatio(t *testing.T) {
	if s := Speedup(3, 2); !almost(s, 1.5) {
		t.Errorf("Speedup = %f", s)
	}
	if s := Speedup(3, 0); s != 0 {
		t.Errorf("Speedup/0 = %f", s)
	}
	if r := Ratio(1, 4); !almost(r, 0.25) {
		t.Errorf("Ratio = %f", r)
	}
	if r := Ratio(1, 0); r != 0 {
		t.Errorf("Ratio/0 = %f", r)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.451); got != "45.1%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestNormalizedWeightedSpeedupEmpty(t *testing.T) {
	got, err := NormalizedWeightedSpeedup(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty NWS = %f", got)
	}
}

func TestWeightedSpeedupSkipsZeroAlone(t *testing.T) {
	// A zero "alone" IPC (broken run) must not produce Inf.
	ws, err := WeightedSpeedup([]float64{1, 1}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ws, 0) || math.IsNaN(ws) {
		t.Errorf("WS with zero alone = %f", ws)
	}
}
