// Package stats provides the derived metrics the paper reports:
// speedups over a no-prefetching baseline, geometric means, weighted
// speedup for multi-core mixes, prefetch coverage against a baseline
// run, and over-prediction.
package stats

import (
	"fmt"
	"math"
)

// Geomean returns the geometric mean of xs (1.0 for empty input).
// Non-positive values are clamped to a tiny epsilon so a single broken
// sample cannot produce NaN.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns ipc/base.
func Speedup(ipc, base float64) float64 {
	if base == 0 {
		return 0
	}
	return ipc / base
}

// WeightedSpeedup implements the paper's multi-core metric:
// Σ IPC_together(i) / IPC_alone(i). Mismatched slice lengths are a
// caller bug, reported as an error rather than a panic — a metrics
// library must not crash the harness mid-campaign.
func WeightedSpeedup(together, alone []float64) (float64, error) {
	if len(together) != len(alone) {
		return 0, fmt.Errorf("stats: weighted speedup length mismatch: %d together vs %d alone",
			len(together), len(alone))
	}
	var ws float64
	for i := range together {
		if alone[i] == 0 {
			continue
		}
		ws += together[i] / alone[i]
	}
	return ws, nil
}

// NormalizedWeightedSpeedup divides WeightedSpeedup by the core count,
// giving the per-core average used to compare against a baseline.
func NormalizedWeightedSpeedup(together, alone []float64) (float64, error) {
	if len(together) == 0 {
		return 0, nil
	}
	ws, err := WeightedSpeedup(together, alone)
	if err != nil {
		return 0, err
	}
	return ws / float64(len(together)), nil
}

// Coverage is the paper's prefetch coverage: the fraction of the
// baseline's demand misses removed by prefetching.
//
//	coverage = (baseMisses − prefMisses) / baseMisses
//
// It can be negative when prefetching pollutes (the paper's
// cactusBSSN case).
func Coverage(baseMisses, prefMisses uint64) float64 {
	if baseMisses == 0 {
		return 0
	}
	return (float64(baseMisses) - float64(prefMisses)) / float64(baseMisses)
}

// OverPrediction is the number of inaccurate prefetches (issued fills
// that were never used) relative to the baseline miss count; the
// paper's Figure 11 reports covered / uncovered / over-predicted on
// this scale.
func OverPrediction(fills, useful, baseMisses uint64) float64 {
	if baseMisses == 0 {
		return 0
	}
	if useful > fills {
		useful = fills
	}
	return float64(fills-useful) / float64(baseMisses)
}

// Ratio is a safe division helper.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct formats a fraction as a percentage string with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
