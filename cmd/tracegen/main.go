// Command tracegen serializes a synthetic workload into the binary
// trace format, so runs can be replayed byte-identically or inspected:
//
//	tracegen -workload mcf-994 -n 1000000 -o mcf-994.trc
//	tracegen -workload mcf-994 -n 1000000 -binary -o mcf-994.trb
//	tracegen -workload mcf-994 -n 20 -dump
//
// -binary emits the fixed-width pre-decoded format (IPCPTRB2), which
// the simulator replays without any per-record parsing; the default is
// the compact v1 format, which trace.Open converts transparently
// through a .bin sidecar on first use.
package main

import (
	"flag"
	"fmt"
	"os"

	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

func main() {
	var (
		name = flag.String("workload", "", "workload name (see ipcpsim -list)")
		n    = flag.Int("n", 1_000_000, "instructions to emit")
		out  = flag.String("o", "", "output trace file")
		seed = flag.Int64("seed", 1, "workload seed")
		dump = flag.Bool("dump", false, "print records as text instead of writing a file")
		bin  = flag.Bool("binary", false, "emit the pre-decoded fixed-width format (zero-parse replay)")
	)
	flag.Parse()

	w, err := workload.Named(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	stream := w.New(*seed)

	if *dump {
		var in trace.Instr
		for i := 0; i < *n && stream.Next(&in); i++ {
			fmt.Printf("%08x", in.IP)
			if in.Loads[0] != 0 {
				fmt.Printf("  LD %#x", in.Loads[0])
				if in.DepPrev {
					fmt.Print(" (dep)")
				}
			}
			if in.Stores[0] != 0 {
				fmt.Printf("  ST %#x", in.Stores[0])
			}
			if in.IsBranch {
				fmt.Printf("  BR taken=%v", in.Taken)
			}
			fmt.Println()
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o or -dump required")
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()

	if *bin {
		tw, err := trace.NewBinaryWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		var in trace.Instr
		for i := 0; i < *n && stream.Next(&in); i++ {
			if err := tw.Write(&in); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
		}
		if err := tw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d instructions to %s (binary)\n", tw.Count(), *out)
		return
	}

	tw, err := trace.NewWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	var in trace.Instr
	for i := 0; i < *n && stream.Next(&in); i++ {
		if err := tw.Write(&in); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d instructions to %s\n", tw.Count(), *out)
}
