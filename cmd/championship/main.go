// Command championship scores every registered prefetcher the way the
// Data Prefetching Championship did: geometric-mean speedup over the
// memory-intensive suite on the fixed Table II system, producing a
// leaderboard. A preliminary version of IPCP won DPC-3; this
// reproduces that style of evaluation.
//
//	championship                 # L1-only leaderboard
//	championship -level l1l2     # multi-level Table III combinations
//	championship -measure 400000 # bigger runs
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ipcp/internal/experiments"
	"ipcp/internal/stats"
	"ipcp/internal/workload"
)

func main() {
	var (
		level   = flag.String("level", "l1", "l1 (L1-only prefetchers) | l1l2 (Table III combos)")
		warmup  = flag.Uint64("warmup", 30_000, "warmup instructions")
		measure = flag.Uint64("measure", 100_000, "measured instructions")
		traces  = flag.Int("traces", 0, "cap the trace list (0 = all memory-intensive)")
	)
	flag.Parse()

	session := experiments.NewSession(experiments.Scale{
		Warmup: *warmup, Measure: *measure, MaxTraces: *traces, Seed: 1,
	})

	names := workload.Names(workload.MemoryIntensive())
	if *traces > 0 && len(names) > *traces {
		// Evenly spaced subset so a small cap keeps the suite's
		// pattern diversity.
		spread := make([]string, 0, *traces)
		for i := 0; i < *traces; i++ {
			spread = append(spread, names[i*len(names)/(*traces)])
		}
		names = spread
	}

	var entrants []experiments.Combo
	switch *level {
	case "l1":
		for _, pf := range []string{"nl", "ipstride", "stream", "bop", "spp",
			"vldp", "mlop", "bingo", "bingo119", "sms", "dspatch", "tskid",
			"throttled-nl", "ipcp"} {
			entrants = append(entrants, experiments.Combo{Name: pf, L1D: pf})
		}
	case "l1l2":
		entrants = experiments.Combos()
	default:
		fmt.Fprintln(os.Stderr, "unknown -level", *level)
		os.Exit(1)
	}

	type score struct {
		name    string
		geomean float64
	}
	var board []score
	for _, e := range entrants {
		sp, err := experiments.Speedups(session, names, e)
		if err != nil {
			fmt.Fprintln(os.Stderr, "championship:", err)
			os.Exit(1)
		}
		board = append(board, score{e.Name, stats.Geomean(sp)})
		fmt.Fprintf(os.Stderr, "scored %-20s %.3f\n", e.Name, board[len(board)-1].geomean)
	}
	sort.Slice(board, func(i, j int) bool { return board[i].geomean > board[j].geomean })

	fmt.Printf("\n=== Leaderboard (%s, %d traces, geomean speedup vs no prefetching) ===\n",
		*level, len(names))
	for rank, s := range board {
		fmt.Printf("%2d. %-20s %.3f\n", rank+1, s.name, s.geomean)
	}
}
