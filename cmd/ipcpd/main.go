// Command ipcpd is the simulation daemon: a long-running HTTP/JSON
// service over a shared experiment session.
//
//	ipcpd -addr 127.0.0.1:8799 -scale quick -cache-dir .ipcp-cache
//
// It also hosts the distributed sweep tier. One process runs the
// coordinator; any number run as workers that register with it:
//
//	ipcpd -coordinator -addr 127.0.0.1:8800 -data-dir .ipcp-coord
//	ipcpd -addr 127.0.0.1:0 -worker http://127.0.0.1:8800
//
//	curl -s -X POST localhost:8800/v1/sweeps \
//	    -d '{"workloads":["mcf-994","gcc-13"],"l1d":["off","ipcp"]}'
//	curl -s localhost:8800/v1/sweeps/s000001          # merged report
//	curl -sN localhost:8800/v1/sweeps/s000001/events  # partial aggregation
//
// A worker forces -shared-warmup (the sweep methodology), registers
// over HTTP, heartbeats, and attaches the coordinator's shared blob
// store behind its disk cache so any worker's checkpoint is every
// worker's disk hit. The coordinator shards each sweep's grid by
// warmup identity, fans points out through the workers' /v1/runs API,
// and reassigns points when a worker misses heartbeats.
//
//	curl -s localhost:8799/healthz
//	curl -s -X POST localhost:8799/v1/runs -H 'X-Request-ID: demo' \
//	    -d '{"workloads":["mcf-994"],"l1d":"ipcp","l2":"ipcp"}'
//	curl -s localhost:8799/v1/runs/j000001
//	curl -sN localhost:8799/v1/runs/j000001/events
//	curl -s localhost:8799/v1/runs/j000001/progress
//	curl -s localhost:8799/v1/runs/j000001/trace     # chrome://tracing
//	curl -s -X POST localhost:8799/v1/experiments -d '{"ids":["fig8"]}'
//	curl -s localhost:8799/metrics                    # JSON
//	curl -s -H 'Accept: text/plain' localhost:8799/metrics  # Prometheus
//	curl -s localhost:8799/v1/buildinfo
//	curl -s localhost:8799/debug/trace
//
// Every request is correlated by X-Request-ID (supplied or minted): the
// id rides every structured log line, every span in the trace exports,
// and the job record. Logs go to stderr via log/slog; -log-format json
// emits machine-parseable lines, -log-level debug adds per-request
// access logs.
//
// Identical concurrent submissions coalesce onto one job and one
// simulation; results are memoized for the daemon's lifetime and — with
// -cache-dir — checkpointed to disk, so a restarted daemon serves
// previously computed runs without resimulating.
//
// SIGINT/SIGTERM drain gracefully: admission closes (new submissions
// get 429), queued and in-flight jobs finish (every completed
// simulation checkpointed when -cache-dir is set), then the process
// exits 0. If -drain-timeout expires first, in-flight simulations are
// cancelled cooperatively and the process exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ipcp/internal/chaos"
	"ipcp/internal/coord"
	"ipcp/internal/experiments"
	"ipcp/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8799", "listen address (port 0 picks an ephemeral port)")
		scale        = flag.String("scale", "quick", "simulation scale: quick | default")
		warmup       = flag.Uint64("warmup", 0, "override warmup instructions")
		measure      = flag.Uint64("measure", 0, "override measured instructions")
		parallel     = flag.Bool("parallel", false, "step multi-core mixes with the parallel epoch-barrier engine (bit-identical results)")
		cacheDir     = flag.String("cache-dir", "", "checkpoint finished simulations here and serve them across restarts")
		queueSize    = flag.Int("queue", 64, "bounded job backlog; a full queue rejects with 429")
		workers      = flag.Int("workers", 0, "concurrent job runners (0 = NumCPU)")
		jobTimeout   = flag.Duration("job-timeout", 0, "cap on per-job deadlines (0 = unbounded)")
		journalDir   = flag.String("journal-dir", "", "write-ahead journal every job here; on restart, acknowledged jobs are replayed (finished ones re-served, unfinished ones re-run)")
		stallTimeout = flag.Duration("stall-timeout", 0, "reap running jobs whose simulation progress stalls this long (0 = no watchdog)")
		sharedWarmup = flag.Bool("shared-warmup", false, "share warmup simulations across run jobs that differ only in prefetcher configuration (cache-warm-only methodology; forked measure phases)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long a SIGTERM drain may take before in-flight work is cancelled")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
		logFormat    = flag.String("log-format", "text", "log encoding: text | json")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (off when empty)")

		coordinator = flag.Bool("coordinator", false, "run as the sweep coordinator instead of a simulation daemon")
		dataDir     = flag.String("data-dir", ".ipcp-coord", "coordinator: shared blob store directory")
		heartbeat   = flag.Duration("heartbeat", 5*time.Second, "coordinator: declare a worker lost after this silent window")
		workerOf    = flag.String("worker", "", "register with the coordinator at this URL and serve sweep points (forces -shared-warmup)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "unknown log level", *logLevel)
		os.Exit(1)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, hopts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	default:
		fmt.Fprintln(os.Stderr, "unknown log format", *logFormat)
		os.Exit(1)
	}
	logger := slog.New(handler)

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "default":
		sc = experiments.Default
	default:
		fmt.Fprintln(os.Stderr, "unknown scale", *scale)
		os.Exit(1)
	}
	if *warmup != 0 {
		sc.Warmup = *warmup
	}
	if *measure != 0 {
		sc.Measure = *measure
	}
	sc.Parallel = *parallel

	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	// Fault injection (IPCPD_CHAOS / IPCPD_CHAOS_SEED) arms only when
	// the environment asks for it; production pays one atomic load.
	if _, err := chaos.EnableFromEnv(); err == nil {
		logger.Warn("chaos injection armed", "spec", os.Getenv(chaos.EnvVar))
	} else if err != chaos.ErrNotConfigured {
		fatal(err)
	}

	if *coordinator {
		if *workerOf != "" {
			fatal(fmt.Errorf("-coordinator and -worker are mutually exclusive"))
		}
		runCoordinator(*addr, *dataDir, *heartbeat, logger, fatal)
		return
	}

	// Worker mode: sweep points arrive as ordinary /v1/runs jobs, but
	// the methodology is fixed — shared warmups (so a group's points
	// fork one local snapshot) over a disk cache wired to the
	// coordinator's blob store (so nothing is computed twice anywhere
	// in the fleet). A worker with no -cache-dir gets a private
	// temporary one; the durable tier is the coordinator's.
	var remoteBlobs experiments.RemoteBlobs
	if *workerOf != "" {
		*sharedWarmup = true
		if *cacheDir == "" {
			dir, err := os.MkdirTemp("", "ipcpd-worker-cache-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			*cacheDir = dir
		}
		remoteBlobs = coord.NewBlobClient(*workerOf, logger)
	}

	srv, err := serve.New(serve.Options{
		Scale:        sc,
		CacheDir:     *cacheDir,
		QueueSize:    *queueSize,
		Workers:      *workers,
		JobTimeout:   *jobTimeout,
		JournalDir:   *journalDir,
		StallTimeout: *stallTimeout,
		SharedWarmup: *sharedWarmup,
		RemoteBlobs:  remoteBlobs,
		Log:          logger,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The resolved address goes to stdout so scripts driving an
	// ephemeral port (-addr 127.0.0.1:0) can find the server.
	fmt.Printf("ipcpd listening on http://%s\n", ln.Addr())
	build := srv.Build()
	logger.Info("serving",
		"addr", "http://"+ln.Addr().String(), "scale", *scale, "queue", *queueSize,
		"revision", build.Revision, "go", build.GoVersion)

	// Register with the coordinator once the listen address is known.
	// The agent keeps the registration alive for the process lifetime;
	// a coordinator outage degrades this daemon to standalone serving.
	var agentCancel context.CancelFunc
	if *workerOf != "" {
		capacity := *workers
		if capacity <= 0 {
			capacity = runtime.NumCPU()
		}
		var actx context.Context
		actx, agentCancel = context.WithCancel(context.Background())
		coord.StartAgent(actx, *workerOf, "http://"+ln.Addr().String(), capacity, logger)
	}

	if *debugAddr != "" {
		// pprof lives on its own listener so profiling exposure is an
		// explicit, separately-bindable decision (e.g. localhost-only
		// while the API faces the network).
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		logger.Info("pprof serving", "addr", "http://"+dln.Addr().String()+"/debug/pprof/")
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				logger.Error("pprof server stopped", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String())
	}

	// Drain while the listener keeps answering: pollers see their jobs
	// finish and late submitters get an explicit 429 instead of a
	// connection refusal.
	if agentCancel != nil {
		agentCancel()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	srv.Close()
	if drainErr != nil {
		logger.Error("drain incomplete, in-flight work cancelled", "err", drainErr)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// runCoordinator serves the sweep coordinator until SIGINT/SIGTERM.
func runCoordinator(addr, dataDir string, heartbeat time.Duration, logger *slog.Logger, fatal func(error)) {
	c, err := coord.New(coord.Options{
		DataDir:          dataDir,
		HeartbeatTimeout: heartbeat,
		Log:              logger,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	// Same stdout contract as the daemon: scripts driving an ephemeral
	// port parse the resolved address from this line.
	fmt.Printf("ipcpd coordinator listening on http://%s\n", ln.Addr())
	logger.Info("coordinating",
		"addr", "http://"+ln.Addr().String(), "data_dir", dataDir, "heartbeat", heartbeat)

	httpSrv := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		logger.Info("signal received, shutting down", "signal", sig.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	c.Close()
	logger.Info("coordinator stopped")
}
