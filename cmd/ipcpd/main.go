// Command ipcpd is the simulation daemon: a long-running HTTP/JSON
// service over a shared experiment session.
//
//	ipcpd -addr 127.0.0.1:8799 -scale quick -cache-dir .ipcp-cache
//
//	curl -s localhost:8799/healthz
//	curl -s -X POST localhost:8799/v1/runs \
//	    -d '{"workloads":["mcf-994"],"l1d":"ipcp","l2":"ipcp"}'
//	curl -s localhost:8799/v1/runs/j000001
//	curl -sN localhost:8799/v1/runs/j000001/events
//	curl -s -X POST localhost:8799/v1/experiments -d '{"ids":["fig8"]}'
//	curl -s localhost:8799/metrics
//
// Identical concurrent submissions coalesce onto one job and one
// simulation; results are memoized for the daemon's lifetime and — with
// -cache-dir — checkpointed to disk, so a restarted daemon serves
// previously computed runs without resimulating.
//
// SIGINT/SIGTERM drain gracefully: admission closes (new submissions
// get 429), queued and in-flight jobs finish (every completed
// simulation checkpointed when -cache-dir is set), then the process
// exits 0. If -drain-timeout expires first, in-flight simulations are
// cancelled cooperatively and the process exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipcp/internal/experiments"
	"ipcp/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8799", "listen address (port 0 picks an ephemeral port)")
		scale        = flag.String("scale", "quick", "simulation scale: quick | default")
		warmup       = flag.Uint64("warmup", 0, "override warmup instructions")
		measure      = flag.Uint64("measure", 0, "override measured instructions")
		cacheDir     = flag.String("cache-dir", "", "checkpoint finished simulations here and serve them across restarts")
		queueSize    = flag.Int("queue", 64, "bounded job backlog; a full queue rejects with 429")
		workers      = flag.Int("workers", 0, "concurrent job runners (0 = NumCPU)")
		jobTimeout   = flag.Duration("job-timeout", 0, "cap on per-job deadlines (0 = unbounded)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long a SIGTERM drain may take before in-flight work is cancelled")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "default":
		sc = experiments.Default
	default:
		fmt.Fprintln(os.Stderr, "unknown scale", *scale)
		os.Exit(1)
	}
	if *warmup != 0 {
		sc.Warmup = *warmup
	}
	if *measure != 0 {
		sc.Measure = *measure
	}

	logger := log.New(os.Stderr, "ipcpd: ", log.LstdFlags)
	srv, err := serve.New(serve.Options{
		Scale:      sc,
		CacheDir:   *cacheDir,
		QueueSize:  *queueSize,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
		Log:        logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// The resolved address goes to stdout so scripts driving an
	// ephemeral port (-addr 127.0.0.1:0) can find the server.
	fmt.Printf("ipcpd listening on http://%s\n", ln.Addr())
	logger.Printf("serving on http://%s (scale %s, queue %d)", ln.Addr(), *scale, *queueSize)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		logger.Fatal(err)
	case sig := <-sigc:
		logger.Printf("%s: draining (in-flight jobs finish; new submissions get 429)", sig)
	}

	// Drain while the listener keeps answering: pollers see their jobs
	// finish and late submitters get an explicit 429 instead of a
	// connection refusal.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	srv.Close()
	if drainErr != nil {
		logger.Printf("drain incomplete: %v (in-flight work cancelled)", drainErr)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}
