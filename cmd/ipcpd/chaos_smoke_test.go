package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChaosSmoke is the crash/restart exercise behind `make
// chaos-smoke`, run against the real binary:
//
//  1. kill -9 mid-burst with ≥16 acknowledged jobs in mixed states,
//     restart, and demand every acknowledged job reach a terminal
//     state under its original ID — zero lost, finished work served
//     from the journal rather than re-executed;
//  2. corrupt the checkpoint store and demand quarantine + recompute
//     — a damaged checkpoint is never served;
//  3. crash the daemon with an injected fault (IPCPD_CHAOS) in the
//     queue-handoff window and demand the acknowledged prefix
//     survives the restart.
func TestChaosSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "ipcpd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ipcpd: %v\n%s", err, out)
	}
	journalDir, cacheDir := t.TempDir(), t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-scale", "quick",
		"-measure", "1000000", "-warmup", "10000", "-workers", "2",
		"-cache-dir", cacheDir, "-journal-dir", journalDir,
	}

	// --- Life 1: burst of 16, then kill -9 mid-flight. -----------------
	d := startDaemon(t, bin, args)
	const burst = 16
	ids := make([]string, 0, burst)
	for i := 0; i < burst; i++ {
		ids = append(ids, submitRun(t, d.base,
			fmt.Sprintf(`{"workloads":["mcf-994"],"l1d":"ipcp","config_key":"chaos-%d"}`, i)))
	}
	// Mixed states at the moment of death: wait for the first job to
	// finish (so some are done, some running, the rest queued), note
	// its result, then pull the plug with no drain and no journal
	// close.
	waitState(t, d.base, ids[0], "done", 120*time.Second)
	preIPC := jobIPC(t, d.base, ids[0])
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := d.wait(30 * time.Second); err == nil {
		t.Fatal("SIGKILLed daemon reported a clean exit")
	}

	// --- Life 2: replay. -----------------------------------------------
	d2 := startDaemon(t, bin, args)
	for _, id := range ids {
		waitState(t, d2.base, id, "done", 300*time.Second)
	}
	if got := jobIPC(t, d2.base, ids[0]); got != preIPC {
		t.Fatalf("replayed result drifted: IPC %v != pre-crash %v", got, preIPC)
	}
	var m struct {
		Session struct {
			Executed int `json:"executed"`
		} `json:"session"`
		Journal struct {
			Enabled      bool   `json:"enabled"`
			ReplayedJobs uint64 `json:"replayed_jobs"`
		} `json:"journal"`
	}
	getJSON(t, d2.base+"/metrics", &m)
	if !m.Journal.Enabled || m.Journal.ReplayedJobs != burst {
		t.Fatalf("journal metrics = %+v, want %d replayed jobs", m.Journal, burst)
	}
	// Work finished before the crash is served from the journal, not
	// re-executed: only the unfinished tail runs again.
	if m.Session.Executed >= burst {
		t.Fatalf("executed %d of %d jobs after replay: finished work was re-run", m.Session.Executed, burst)
	}
	// New admissions continue the ID sequence past the replayed jobs.
	next := submitRun(t, d2.base, `{"workloads":["mcf-994"],"l1d":"ipcp","config_key":"post-crash"}`)
	if want := fmt.Sprintf("j%06d", burst+1); next != want {
		t.Fatalf("post-replay id = %s, want %s", next, want)
	}
	waitState(t, d2.base, next, "done", 120*time.Second)
	sigtermAndWait(t, d2)

	// --- Life 3: corrupt checkpoints are quarantined, never served. ----
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoints to vandalize (err=%v)", err)
	}
	for _, p := range entries {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20 // one flipped bit, anywhere in the frame
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh journal: the job must come back through the checkpoint
	// store, not the WAL replay.
	args3 := append(append([]string{}, args...)[:len(args)-2], "-journal-dir", t.TempDir())
	d3 := startDaemon(t, bin, args3)
	id3 := submitRun(t, d3.base, `{"workloads":["mcf-994"],"l1d":"ipcp","config_key":"chaos-0"}`)
	waitState(t, d3.base, id3, "done", 120*time.Second)
	if got := jobIPC(t, d3.base, id3); got != preIPC {
		t.Fatalf("recomputed result drifted: IPC %v != %v", got, preIPC)
	}
	var m3 struct {
		Session struct {
			Executed    int `json:"executed"`
			DiskHits    int `json:"disk_hits"`
			Quarantined int `json:"quarantined"`
		} `json:"session"`
	}
	getJSON(t, d3.base+"/metrics", &m3)
	if m3.Session.Quarantined != 1 || m3.Session.DiskHits != 0 || m3.Session.Executed != 1 {
		t.Fatalf("corrupt checkpoint handling = %+v, want quarantine + recompute, no disk hit", m3.Session)
	}
	if q, _ := filepath.Glob(filepath.Join(cacheDir, "corrupt", "*")); len(q) == 0 {
		t.Fatal("quarantine directory is empty after a corrupt load")
	}
	promBody := getBody(t, d3.base+"/metrics", map[string]string{"Accept": "text/plain"})
	if !strings.Contains(promBody, "ipcpd_checkpoints_quarantined 1") {
		t.Error("prometheus exposition lacks the quarantine counter")
	}
	sigtermAndWait(t, d3)

	// --- Life 4: injected crash at the queue handoff. ------------------
	// crash:1:8 fires on the 9th handoff: eight submissions are
	// acknowledged (and journaled), the ninth dies between the queue
	// send and the WAL append — the one window where work is lost, and
	// the client was never told otherwise.
	journal4 := t.TempDir()
	args4 := append(append([]string{}, args...)[:len(args)-2], "-journal-dir", journal4)
	d4 := startDaemonCapture(t, bin, args4, false, "IPCPD_CHAOS=queue.handoff=crash:1:8")
	acked := make([]string, 0, 8)
	for i := 0; i < 12; i++ {
		resp, err := http.Post(d4.base+"/v1/runs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"workloads":["mcf-994"],"l1d":"ipcp","config_key":"handoff-%d"}`, i)))
		if err != nil {
			break // the injected crash took the daemon mid-request
		}
		if resp.StatusCode == http.StatusAccepted {
			var v struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				resp.Body.Close()
				t.Fatal(err)
			}
			acked = append(acked, v.ID)
		}
		resp.Body.Close()
	}
	if err := d4.wait(30 * time.Second); err == nil {
		t.Fatal("chaos crash never fired: daemon exited cleanly")
	}
	if len(acked) != 8 {
		t.Fatalf("acknowledged %d submissions before the injected crash, want 8", len(acked))
	}

	d5 := startDaemon(t, bin, args4)
	for _, id := range acked {
		waitState(t, d5.base, id, "done", 300*time.Second)
	}
	sigtermAndWait(t, d5)
}

func sigtermAndWait(t *testing.T, d *daemon) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.wait(120 * time.Second); err != nil {
		t.Fatalf("drain was not clean: %v", err)
	}
}

// jobIPC fetches a done job's single-core IPC.
func jobIPC(t *testing.T, base, id string) float64 {
	t.Helper()
	var v struct {
		Result struct {
			IPC []float64 `json:"IPC"`
		} `json:"result"`
	}
	getJSON(t, base+"/v1/runs/"+id, &v)
	if len(v.Result.IPC) == 0 {
		t.Fatalf("job %s carries no result", id)
	}
	return v.Result.IPC[0]
}
