package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end daemon exercise behind `make
// serve-smoke`: build the real binary, boot it on an ephemeral port,
// drive the API, SIGTERM it mid-job and demand a clean (exit 0) drain,
// then reboot over the same cache directory and prove the checkpointed
// result is served without resimulating.
//
// The binary is built without -race regardless of how this test binary
// runs, so simulation speed — and therefore the drain-window timing —
// is stable under `go test -race ./...`.
func TestServeSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "ipcpd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ipcpd: %v\n%s", err, out)
	}
	cacheDir := t.TempDir()
	// A job big enough (~4M instructions) to still be in flight when
	// the SIGTERM lands, small enough to drain in a few seconds.
	args := []string{
		"-addr", "127.0.0.1:0", "-scale", "quick",
		"-measure", "4000000", "-warmup", "10000",
		"-cache-dir", cacheDir, "-drain-timeout", "120s",
	}

	// --- First life: busy drain. ---------------------------------------
	d := startDaemon(t, bin, args)
	mustGet(t, d.base+"/healthz", http.StatusOK)
	mustGet(t, d.base+"/metrics", http.StatusOK)

	id := submitRun(t, d.base, `{"workloads":["mcf-994"],"l1d":"ipcp","l2":"ipcp"}`)
	waitState(t, d.base, id, "running", 30*time.Second)

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// While draining, new admissions bounce with 429 (or, if the drain
	// already finished, the listener is gone — both are "not admitted").
	deadline := time.Now().Add(10 * time.Second)
	admissionClosed := false
	for time.Now().Before(deadline) && !admissionClosed {
		resp, err := http.Post(d.base+"/v1/runs", "application/json",
			strings.NewReader(`{"workloads":["bwaves-98"]}`))
		switch {
		case err != nil:
			admissionClosed = true // listener closed: drain completed
		case resp.StatusCode == http.StatusTooManyRequests:
			resp.Body.Close()
			admissionClosed = true
		case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
			// Signal not yet processed; retry.
			resp.Body.Close()
			time.Sleep(20 * time.Millisecond)
		default:
			resp.Body.Close()
			t.Fatalf("probe during drain: unexpected status %d", resp.StatusCode)
		}
	}
	if !admissionClosed {
		t.Fatal("admission never closed after SIGTERM")
	}
	if err := d.wait(120 * time.Second); err != nil {
		t.Fatalf("busy drain was not clean: %v", err)
	}

	// The in-flight job completed and was checkpointed.
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpointed results in %s after drain (err=%v)", cacheDir, err)
	}

	// --- Second life: resume from the checkpoint. ----------------------
	d2 := startDaemon(t, bin, args)
	id2 := submitRun(t, d2.base, `{"workloads":["mcf-994"],"l1d":"ipcp","l2":"ipcp"}`)
	waitState(t, d2.base, id2, "done", 30*time.Second)

	var m struct {
		Session struct {
			Executed int `json:"executed"`
			DiskHits int `json:"disk_hits"`
		} `json:"session"`
	}
	getJSON(t, d2.base+"/metrics", &m)
	if m.Session.Executed != 0 || m.Session.DiskHits != 1 {
		t.Fatalf("restarted daemon: executed=%d disk_hits=%d, want 0/1 (checkpoint reuse)",
			m.Session.Executed, m.Session.DiskHits)
	}
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.wait(60 * time.Second); err != nil {
		t.Fatalf("idle drain was not clean: %v", err)
	}
}

// TestObsSmoke is the end-to-end observability exercise behind `make
// obs-smoke`: boot the real binary with JSON debug logs and a pprof
// listener, submit a run tagged X-Request-ID: demo, watch its live
// progress, then demand the id back on the response header, the
// structured logs, and the Chrome trace; scrape Prometheus metrics with
// the split latency histograms; hit buildinfo and pprof.
func TestObsSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "ipcpd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ipcpd: %v\n%s", err, out)
	}
	d := startDaemonCapture(t, bin, []string{
		"-addr", "127.0.0.1:0", "-scale", "quick",
		"-measure", "3000000", "-warmup", "10000",
		"-log-format", "json", "-log-level", "debug",
		"-debug-addr", "127.0.0.1:0",
	}, true)

	// Submit with a caller-chosen correlation id.
	req, err := http.NewRequest(http.MethodPost, d.base+"/v1/runs",
		strings.NewReader(`{"workloads":["mcf-994"],"l1d":"ipcp","l2":"ipcp"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "demo")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "demo" {
		t.Errorf("response X-Request-ID = %q, want demo", got)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Live progress: some report with retired instructions must surface
	// before (or at) completion.
	deadline := time.Now().Add(60 * time.Second)
	sawProgress := false
	for time.Now().Before(deadline) {
		var p struct {
			Status  string `json:"status"`
			Phase   string `json:"phase"`
			Retired uint64 `json:"retired"`
		}
		getJSON(t, d.base+"/v1/runs/"+sub.ID+"/progress", &p)
		if p.Retired > 0 && (p.Phase == "warmup" || p.Phase == "measure") {
			sawProgress = true
		}
		if p.Status == "done" || p.Status == "failed" {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !sawProgress {
		t.Error("no live progress report ever surfaced")
	}
	waitState(t, d.base, sub.ID, "done", 60*time.Second)

	// The per-job Chrome trace carries the request id through every hop.
	traceBody := getBody(t, d.base+"/v1/runs/"+sub.ID+"/trace", nil)
	for _, needle := range []string{"queue.wait", "session.run", "sim.warmup", "sim.measure", `"request_id": "demo"`} {
		if !strings.Contains(traceBody, needle) {
			t.Errorf("job trace lacks %q", needle)
		}
	}
	if body := getBody(t, d.base+"/debug/trace", nil); !strings.Contains(body, "traceEvents") {
		t.Errorf("daemon-wide trace looks wrong: %.120s", body)
	}

	// Prometheus exposition with the split histograms.
	promBody := getBody(t, d.base+"/metrics", map[string]string{"Accept": "text/plain"})
	for _, needle := range []string{
		"# TYPE ipcpd_job_queue_wait_seconds histogram",
		"# TYPE ipcpd_job_execution_seconds histogram",
		`ipcpd_jobs_total{outcome="completed"} 1`,
		"ipcpd_build_info{",
	} {
		if !strings.Contains(promBody, needle) {
			t.Errorf("prometheus exposition lacks %q", needle)
		}
	}

	var bi struct {
		GoVersion string `json:"go_version"`
		Revision  string `json:"vcs_revision"`
	}
	getJSON(t, d.base+"/v1/buildinfo", &bi)
	if !strings.HasPrefix(bi.GoVersion, "go") || bi.Revision == "" {
		t.Errorf("buildinfo = %+v", bi)
	}

	// pprof answers on its own listener, announced in the logs.
	logs := d.stderr.String()
	m := regexp.MustCompile(`http://127\.0\.0\.1:\d+/debug/pprof/`).FindString(logs)
	if m == "" {
		t.Fatalf("pprof address never logged:\n%s", logs)
	}
	mustGet(t, m, http.StatusOK)
	mustGet(t, strings.TrimSuffix(m, "/")+"/cmdline", http.StatusOK)

	// Structured logs: JSON lines, and the job lifecycle carries the id.
	sawCorrelated := false
	sc := bufio.NewScanner(strings.NewReader(logs))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("stderr line is not JSON: %q", line)
		}
		if entry["request_id"] == "demo" && entry["job_id"] == sub.ID {
			sawCorrelated = true
		}
	}
	if !sawCorrelated {
		t.Errorf("no log line correlates request demo with job %s:\n%s", sub.ID, logs)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.wait(60 * time.Second); err != nil {
		t.Fatalf("drain was not clean: %v", err)
	}
}

// getBody fetches a URL (with optional headers) and returns the body.
func getBody(t *testing.T, url string, headers map[string]string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d (%s)", url, resp.StatusCode, buf.Bytes())
	}
	return buf.String()
}

type daemon struct {
	cmd    *exec.Cmd
	base   string
	done   chan error
	stderr *lockedBuffer // non-nil when the caller captures logs
}

// lockedBuffer is a concurrency-safe sink for the child's stderr: the
// pipe goroutine writes while the test reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon launches the binary and parses the ephemeral address off
// stdout. The process is killed at test cleanup if still alive.
func startDaemon(t *testing.T, bin string, args []string) *daemon {
	return startDaemonCapture(t, bin, args, false)
}

// startDaemonCapture optionally tees the daemon's stderr into a buffer
// the test can inspect (structured-log assertions). Extra env entries
// (KEY=VALUE) are appended to the inherited environment.
func startDaemonCapture(t *testing.T, bin string, args []string, capture bool, env ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	var logBuf *lockedBuffer
	if capture {
		logBuf = &lockedBuffer{}
		cmd.Stderr = io.MultiWriter(os.Stderr, logBuf)
	} else {
		cmd.Stderr = os.Stderr
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "ipcpd listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address: %v", sc.Err())
	}
	d := &daemon{cmd: cmd, base: addr, done: make(chan error, 1), stderr: logBuf}
	go func() {
		// Drain the rest of stdout so the child never blocks on a full
		// pipe, then reap it.
		for sc.Scan() {
		}
		d.done <- cmd.Wait()
	}()
	return d
}

// wait blocks for process exit and fails on a non-zero status.
func (d *daemon) wait(timeout time.Duration) error {
	select {
	case err := <-d.done:
		return err
	case <-time.After(timeout):
		return errors.New("daemon did not exit in time")
	}
}

func mustGet(t *testing.T, url string, want int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, want)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

func submitRun(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", resp.StatusCode)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// waitState polls the job until it reaches state (or a terminal state
// past it).
func waitState(t *testing.T, base, id, state string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		getJSON(t, base+"/v1/runs/"+id, &v)
		switch {
		case v.Status == state:
			return
		case v.Status == "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		case v.Status == "done" && state == "running":
			t.Fatalf("job %s finished before the drain window (machine too fast for the smoke sizing?)", id)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, v.Status, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
