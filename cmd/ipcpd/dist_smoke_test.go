package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestDistSmoke is the distributed-tier exercise behind `make
// dist-smoke`, run against the real binary: one coordinator, two
// workers, one POST /v1/sweeps — then kill -9 a worker mid-sweep and
// demand every acknowledged point still reaches a result, with the
// reassignment visible on the coordinator's metrics.
func TestDistSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "ipcpd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ipcpd: %v\n%s", err, out)
	}

	// Coordinator with a tight heartbeat so the kill is detected fast.
	cd := startCoordinator(t, bin, []string{
		"-coordinator", "-addr", "127.0.0.1:0",
		"-data-dir", t.TempDir(), "-heartbeat", "1s",
	})
	workerArgs := []string{
		"-addr", "127.0.0.1:0", "-worker", cd.base,
		"-scale", "quick", "-warmup", "10000", "-measure", "2000000",
		"-workers", "2", "-queue", "32",
	}
	w1 := startDaemon(t, bin, workerArgs)
	w2 := startDaemon(t, bin, workerArgs)

	// Both workers registered and live.
	waitCond(t, 30*time.Second, "2 live workers", func() bool {
		var h struct {
			Workers int `json:"workers"`
		}
		getJSON(t, cd.base+"/healthz", &h)
		return h.Workers == 2
	})

	// One request, the whole grid: 4 workloads × 2 L1D prefetchers =
	// 8 points in 4 warmup groups, sized to run for several seconds so
	// the kill window below is wide.
	resp, err := http.Post(cd.base+"/v1/sweeps", "application/json", strings.NewReader(
		`{"workloads":["mcf-994","bwaves-98","lbm-94","gcc-2226"],"l1d":["","ipcp"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Points != 8 {
		t.Fatalf("POST /v1/sweeps = %d (%+v), want 202 with 8 points", resp.StatusCode, sub)
	}

	type sweepView struct {
		Status string `json:"status"`
		Total  int    `json:"total"`
		Done   int    `json:"done"`
		Failed int    `json:"failed"`
		Points []struct {
			Status string          `json:"status"`
			Worker string          `json:"worker"`
			Result json.RawMessage `json:"result"`
		} `json:"points"`
	}
	sweepURL := cd.base + "/v1/sweeps/" + sub.ID

	// Wait until both workers hold running points, then pick a victim
	// that is mid-point — its death must strand work in flight.
	var victimID string
	waitCond(t, 120*time.Second, "points running on both workers", func() bool {
		var v sweepView
		getJSON(t, sweepURL, &v)
		if v.Status == "done" {
			t.Fatal("sweep finished before the kill window (machine too fast for the smoke sizing?)")
		}
		running := map[string]bool{}
		for _, pt := range v.Points {
			if pt.Status == "running" && pt.Worker != "" {
				running[pt.Worker] = true
				victimID = pt.Worker
			}
		}
		return len(running) >= 2
	})

	// Map the victim's registry entry to its process and kill -9.
	var workers struct {
		Workers []struct {
			ID  string `json:"id"`
			URL string `json:"url"`
		} `json:"workers"`
	}
	getJSON(t, cd.base+"/v1/workers", &workers)
	var victim *daemon
	for _, wv := range workers.Workers {
		if wv.ID != victimID {
			continue
		}
		for _, d := range []*daemon{w1, w2} {
			if d.base == wv.URL {
				victim = d
			}
		}
	}
	if victim == nil {
		t.Fatalf("victim worker %s not found among the spawned daemons", victimID)
	}
	survivor := w1
	if victim == w1 {
		survivor = w2
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := victim.wait(30 * time.Second); err == nil {
		t.Fatal("SIGKILLed worker reported a clean exit")
	}

	// The sweep still completes: zero acknowledged points lost, every
	// point carries a result.
	var final sweepView
	waitCond(t, 10*time.Minute, "sweep completion after the kill", func() bool {
		getJSON(t, sweepURL, &final)
		return final.Status == "done"
	})
	if final.Total != 8 || final.Done != 8 || final.Failed != 0 {
		t.Fatalf("post-kill sweep total=%d done=%d failed=%d, want 8/8/0",
			final.Total, final.Done, final.Failed)
	}
	for i, pt := range final.Points {
		if pt.Status != "done" || len(pt.Result) == 0 || string(pt.Result) == "null" {
			t.Fatalf("point %d = %s with result %.60s, want done with a result", i, pt.Status, pt.Result)
		}
	}

	// The failure handling is visible on the coordinator's metrics,
	// JSON and Prometheus both.
	var m struct {
		Workers struct {
			Lost uint64 `json:"lost"`
		} `json:"workers"`
		Points struct {
			Done       uint64 `json:"done"`
			Reassigned uint64 `json:"reassigned"`
		} `json:"points"`
		Fanout struct {
			Submitted uint64 `json:"submitted"`
		} `json:"fanout"`
		Blobs struct {
			Puts uint64 `json:"puts"`
		} `json:"blobs"`
	}
	getJSON(t, cd.base+"/metrics", &m)
	if m.Points.Done != 8 || m.Points.Reassigned == 0 {
		t.Fatalf("point counters = %+v, want done=8 and reassigned>0", m.Points)
	}
	if m.Workers.Lost == 0 {
		t.Fatal("the killed worker was never declared lost")
	}
	if m.Fanout.Submitted < 8 {
		t.Fatalf("fanout submitted = %d, want >= 8", m.Fanout.Submitted)
	}
	if m.Blobs.Puts == 0 {
		t.Fatal("no checkpoints reached the shared blob store")
	}
	promBody := getBody(t, cd.base+"/metrics", map[string]string{"Accept": "text/plain"})
	for _, metric := range []string{
		`ipcpc_points_total{outcome="done"} 8`,
		`ipcpc_points_total{outcome="reassigned"}`,
		`ipcpc_workers_lost_total`,
	} {
		if !strings.Contains(promBody, metric) {
			t.Errorf("prometheus exposition lacks %s", metric)
		}
	}

	// Orderly teardown: the survivor drains cleanly, the coordinator
	// shuts down cleanly.
	sigtermAndWait(t, survivor)
	sigtermAndWait(t, cd)
}

// startCoordinator mirrors startDaemon for -coordinator processes,
// whose stdout announcement differs.
func startCoordinator(t *testing.T, bin string, args []string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "ipcpd coordinator listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("coordinator never announced its address: %v", sc.Err())
	}
	d := &daemon{cmd: cmd, base: addr, done: make(chan error, 1)}
	go func() {
		for sc.Scan() {
		}
		d.done <- cmd.Wait()
	}()
	return d
}

// waitCond polls cond until true or the deadline expires.
func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
