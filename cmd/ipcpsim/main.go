// Command ipcpsim runs one simulation and prints a statistics summary:
//
//	ipcpsim -workload gcc-2226 -l1 ipcp -l2 ipcp -measure 200000
//	ipcpsim -mix lbm-94,omnetpp-17 -l1 bingo
//	ipcpsim -workload gcc-2226 -l1 ipcp -l2 ipcp -trace run.json -interval 10000 -metrics-out run.csv
//	ipcpsim -workload gcc-2226 -l1 ipcp -json
//	ipcpsim -list
//
// Observability flags: -trace writes the measured phase's event trace
// (.json → Chrome trace_event for chrome://tracing / Perfetto,
// anything else → JSONL); -interval N samples the metrics timeline
// every N cycles into -metrics-out (.csv → CSV, else JSONL); -json
// emits the full result as one JSON object on stdout; -cpuprofile /
// -memprofile write stdlib runtime/pprof profiles; -audit runs the
// simulation under the differential audit harness (reference cache
// models and IPCP oracles in lockstep) and exits 2 on any violation.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"ipcp"
	"ipcp/internal/memsys"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "single-core workload name")
		mix          = flag.String("mix", "", "comma-separated workloads, one per core")
		l1           = flag.String("l1", "", "L1-D prefetcher (see -list)")
		l2           = flag.String("l2", "", "L2 prefetcher")
		llc          = flag.String("llc", "", "LLC prefetcher")
		warmup       = flag.Uint64("warmup", 50_000, "warmup instructions per core")
		measure      = flag.Uint64("measure", 200_000, "measured instructions per core")
		seed         = flag.Int64("seed", 1, "workload/page-allocation seed")
		parallel     = flag.Bool("parallel", false, "step core slices on parallel goroutines (bit-identical; multi-core mixes only, ignored with -trace/-audit)")
		list         = flag.Bool("list", false, "list workloads and prefetchers")

		traceOut   = flag.String("trace", "", "write the event trace to this file (.json → Chrome trace_event, else JSONL)")
		traceBuf   = flag.Int("trace-buf", 1<<19, "event ring-buffer capacity (oldest events overwritten beyond it)")
		interval   = flag.Int64("interval", 0, "sample interval metrics every N cycles (0 = off)")
		metricsOut = flag.String("metrics-out", "", "write the interval timeline to this file (.csv → CSV, else JSONL; default stdout)")
		jsonOut    = flag.Bool("json", false, "emit the full result as one JSON object on stdout")
		auditRun   = flag.Bool("audit", false, "attach the differential audit harness (slow); exit 2 on any violation")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("prefetchers:", strings.Join(ipcp.Prefetchers(), " "))
		fmt.Println()
		fmt.Println("workloads:")
		for _, w := range ipcp.Workloads() {
			fmt.Println("  ", w)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rc := ipcp.RunConfig{
		Workload:      *workloadName,
		L1DPrefetcher: *l1,
		L2Prefetcher:  *l2,
		LLCPrefetcher: *llc,
		Warmup:        *warmup,
		Measure:       *measure,
		Seed:          *seed,
		Parallel:      *parallel,
	}
	if *mix != "" {
		rc.Mix = strings.Split(*mix, ",")
	}
	if *traceOut != "" {
		rc.Tracer = ipcp.NewTracer(*traceBuf)
	}
	if *interval > 0 || *metricsOut != "" {
		rc.Intervals = ipcp.NewIntervalLog(*interval)
	}
	if *auditRun {
		rc.Audit = ipcp.NewAuditChecker()
	}

	// SIGINT/SIGTERM cancel the run cooperatively; telemetry collected up
	// to the interruption is still flushed below before exiting 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := ipcp.RunContext(ctx, rc)
	interrupted := err != nil && errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatal(err)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "ipcpsim: interrupted; flushing telemetry collected so far")
	}

	if *traceOut != "" {
		if err := writeTrace(rc.Tracer, *traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ipcpsim: wrote %d trace events to %s (%d overwritten)\n",
			rc.Tracer.Len(), *traceOut, rc.Tracer.Dropped())
	}
	if rc.Intervals != nil {
		if err := writeIntervals(rc.Intervals, *metricsOut); err != nil {
			fatal(err)
		}
		if *metricsOut != "" {
			fmt.Fprintf(os.Stderr, "ipcpsim: wrote %d interval samples to %s\n",
				rc.Intervals.Len(), *metricsOut)
		}
	}
	if interrupted {
		os.Exit(130)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		report(res)
	}

	if *auditRun {
		if err := rc.Audit.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "ipcpsim: audit:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "ipcpsim: audit clean (reference models and invariants agree)")
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipcpsim:", err)
	os.Exit(1)
}

// writeTrace exports the event trace; a .json extension selects the
// Chrome trace_event format, anything else JSONL.
func writeTrace(tr *ipcp.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return tr.WriteChromeTrace(f)
	}
	return tr.WriteJSONL(f)
}

// writeIntervals exports the interval timeline; a .csv extension
// selects CSV, anything else JSONL; an empty path writes CSV to stdout.
func writeIntervals(log *ipcp.IntervalLog, path string) error {
	if path == "" {
		return log.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return log.WriteCSV(f)
	}
	return log.WriteJSONL(f)
}

func report(res *ipcp.Result) {
	for i := 0; i < res.Cores; i++ {
		fmt.Printf("core %d: IPC %.4f  (%d instructions in %d cycles)\n",
			i, res.IPC[i], res.Instructions, res.CyclesPerCore[i])
		l1 := res.L1D[i]
		fmt.Printf("  L1D: %6d demand accesses, %6d misses (MPKI %.1f; misses include MSHR merges)\n",
			l1.DemandAccesses(), l1.DemandMisses(), res.MPKI("L1D", i))
		if l1.PrefetchIssued > 0 {
			fmt.Printf("       prefetch: issued %d, filled %d, useful %d (accuracy %.2f), late %d\n",
				l1.PrefetchIssued, l1.PrefetchFills, l1.PrefetchUseful, l1.Accuracy(), l1.LatePrefetch)
			fmt.Printf("       by class: CS %d  CPLX %d  GS %d  NL %d\n",
				l1.IssuedByClass[memsys.ClassCS], l1.IssuedByClass[memsys.ClassCPLX],
				l1.IssuedByClass[memsys.ClassGS], l1.IssuedByClass[memsys.ClassNL])
		}
		if snap := res.IPCPL1[i]; snap != nil {
			reportIPCP(snap)
		}
		l2 := res.L2[i]
		fmt.Printf("  L2:  %6d demand accesses, %6d misses (MPKI %.1f), %d prefetches\n",
			l2.DemandAccesses(), l2.DemandMisses(), res.MPKI("L2", i), l2.PrefetchIssued)
	}
	fmt.Printf("LLC:  %d demand accesses, %d misses\n",
		res.LLC.DemandAccesses(), res.LLC.DemandMisses())
	fmt.Printf("DRAM: %d reads, %d writes, %.1f%% bus utilization, %d row hits / %d misses / %d conflicts\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.BusUtilization()*100,
		res.DRAM.RowHits, res.DRAM.RowMisses, res.DRAM.RowConflicts)
}

// reportIPCP prints the per-class introspection table of an IPCP L1.
func reportIPCP(s *ipcp.IPCPSnapshot) {
	nl := "off"
	if s.NLOn {
		nl = "on"
	}
	fmt.Printf("       IPCP: NL gate %s, %d class transitions, RR filter %d/%d hits\n",
		nl, s.ClassTransitions, s.RRHits, s.RRProbes)
	fmt.Printf("       %-5s %8s %8s %8s %6s %6s %8s %8s %6s %6s\n",
		"class", "issued", "fills", "useful", "acc", "deg", "rr-drop", "clamped", "thr+", "thr-")
	for _, cls := range []memsys.PrefetchClass{
		memsys.ClassCS, memsys.ClassCPLX, memsys.ClassGS, memsys.ClassNL,
	} {
		c := s.Classes[cls]
		acc := "--"
		if c.AccuracyMeasured {
			acc = fmt.Sprintf("%.2f", c.Accuracy)
		}
		fmt.Printf("       %-5s %8d %8d %8d %6s %6d %8d %8d %6d %6d\n",
			cls, c.Issued, c.Fills, c.Useful, acc, c.Degree,
			c.RRFiltered, c.PageClamped, c.ThrottleUps, c.ThrottleDowns)
	}
}
