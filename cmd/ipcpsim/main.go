// Command ipcpsim runs one simulation and prints a statistics summary:
//
//	ipcpsim -workload gcc-2226 -l1 ipcp -l2 ipcp -measure 200000
//	ipcpsim -mix lbm-94,omnetpp-17 -l1 bingo
//	ipcpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ipcp"
	"ipcp/internal/memsys"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "single-core workload name")
		mix          = flag.String("mix", "", "comma-separated workloads, one per core")
		l1           = flag.String("l1", "", "L1-D prefetcher (see -list)")
		l2           = flag.String("l2", "", "L2 prefetcher")
		llc          = flag.String("llc", "", "LLC prefetcher")
		warmup       = flag.Uint64("warmup", 50_000, "warmup instructions per core")
		measure      = flag.Uint64("measure", 200_000, "measured instructions per core")
		seed         = flag.Int64("seed", 1, "workload/page-allocation seed")
		list         = flag.Bool("list", false, "list workloads and prefetchers")
	)
	flag.Parse()

	if *list {
		fmt.Println("prefetchers:", strings.Join(ipcp.Prefetchers(), " "))
		fmt.Println()
		fmt.Println("workloads:")
		for _, w := range ipcp.Workloads() {
			fmt.Println("  ", w)
		}
		return
	}

	rc := ipcp.RunConfig{
		Workload:      *workloadName,
		L1DPrefetcher: *l1,
		L2Prefetcher:  *l2,
		LLCPrefetcher: *llc,
		Warmup:        *warmup,
		Measure:       *measure,
		Seed:          *seed,
	}
	if *mix != "" {
		rc.Mix = strings.Split(*mix, ",")
	}
	res, err := ipcp.Run(rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipcpsim:", err)
		os.Exit(1)
	}
	report(res)
}

func report(res *ipcp.Result) {
	for i := 0; i < res.Cores; i++ {
		fmt.Printf("core %d: IPC %.4f  (%d instructions in %d cycles)\n",
			i, res.IPC[i], res.Instructions, res.CyclesPerCore[i])
		l1 := res.L1D[i]
		fmt.Printf("  L1D: %6d demand accesses, %6d misses (MPKI %.1f; misses include MSHR merges)\n",
			l1.DemandAccesses(), l1.DemandMisses(), res.MPKI("L1D", i))
		if l1.PrefetchIssued > 0 {
			fmt.Printf("       prefetch: issued %d, filled %d, useful %d (accuracy %.2f), late %d\n",
				l1.PrefetchIssued, l1.PrefetchFills, l1.PrefetchUseful, l1.Accuracy(), l1.LatePrefetch)
			fmt.Printf("       by class: CS %d  CPLX %d  GS %d  NL %d\n",
				l1.IssuedByClass[memsys.ClassCS], l1.IssuedByClass[memsys.ClassCPLX],
				l1.IssuedByClass[memsys.ClassGS], l1.IssuedByClass[memsys.ClassNL])
		}
		l2 := res.L2[i]
		fmt.Printf("  L2:  %6d demand accesses, %6d misses (MPKI %.1f), %d prefetches\n",
			l2.DemandAccesses(), l2.DemandMisses(), res.MPKI("L2", i), l2.PrefetchIssued)
	}
	fmt.Printf("LLC:  %d demand accesses, %d misses\n",
		res.LLC.DemandAccesses(), res.LLC.DemandMisses())
	fmt.Printf("DRAM: %d reads, %d writes, %.1f%% bus utilization, %d row hits / %d misses / %d conflicts\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.BusUtilization()*100,
		res.DRAM.RowHits, res.DRAM.RowMisses, res.DRAM.RowConflicts)
}
