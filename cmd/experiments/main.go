// Command experiments regenerates the paper's tables and figures:
//
//	experiments -list
//	experiments -run fig8,fig10
//	experiments -run all -scale default -out EXPERIMENTS-data.md
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ipcp/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale   = flag.String("scale", "quick", "quick | default | full")
		out     = flag.String("out", "", "write markdown to this file (default stdout)")
		traces  = flag.Int("traces", 0, "override the trace cap (0 = scale default)")
		mixes   = flag.Int("mixes", 0, "override the multi-core mix count")
		warmup  = flag.Uint64("warmup", 0, "override warmup instructions")
		measure = flag.Uint64("measure", 0, "override measured instructions")
		list    = flag.Bool("list", false, "list experiments")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the harness to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "default":
		sc = experiments.Default
	case "full":
		sc = experiments.Default
		sc.Measure *= 4
		sc.Mixes *= 2
	default:
		fmt.Fprintln(os.Stderr, "unknown scale", *scale)
		os.Exit(1)
	}
	if *traces != 0 {
		sc.MaxTraces = *traces
	}
	if *mixes != 0 {
		sc.Mixes = *mixes
	}
	if *warmup != 0 {
		sc.Warmup = *warmup
	}
	if *measure != 0 {
		sc.Measure = *measure
	}

	var ids []string
	if *run == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	session := experiments.NewSession(sc)
	var b strings.Builder
	for _, id := range ids {
		e, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s)...", e.ID, e.Title)
		tab, err := e.Run(session)
		if err != nil {
			fmt.Fprintf(os.Stderr, "\n%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, " done in %.1fs\n", time.Since(start).Seconds())
		b.WriteString(tab.Markdown())
		b.WriteString("\nPaper: " + e.Paper + "\n\n")
	}

	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
}
