// Command experiments regenerates the paper's tables and figures:
//
//	experiments -list
//	experiments -run fig8,fig10
//	experiments -run all -scale default -out EXPERIMENTS-data.md
//	experiments -run all -cache-dir .ipcp-cache   # interruptible + resumable
//
// SIGINT/SIGTERM interrupt the run cooperatively: in-flight simulations
// stop within a few thousand cycles, completed tables are flushed, and
// the process exits 130. With -cache-dir every finished simulation is
// checkpointed, so rerunning the same command resumes instead of
// recomputing (-resume is shorthand for the default cache directory).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ipcp/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale    = flag.String("scale", "quick", "quick | default | full")
		out      = flag.String("out", "", "write markdown to this file (default stdout)")
		traces   = flag.Int("traces", 0, "override the trace cap (0 = scale default)")
		mixes    = flag.Int("mixes", 0, "override the multi-core mix count")
		warmup   = flag.Uint64("warmup", 0, "override warmup instructions")
		measure  = flag.Uint64("measure", 0, "override measured instructions")
		list     = flag.Bool("list", false, "list experiments")
		cacheDir = flag.String("cache-dir", "", "checkpoint finished simulations here and resume from them")
		resume   = flag.Bool("resume", false, "shorthand for -cache-dir .ipcp-cache")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the harness to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "default":
		sc = experiments.Default
	case "full":
		sc = experiments.Default
		sc.Measure *= 4
		sc.Mixes *= 2
	default:
		fmt.Fprintln(os.Stderr, "unknown scale", *scale)
		os.Exit(1)
	}
	if *traces != 0 {
		sc.MaxTraces = *traces
	}
	if *mixes != 0 {
		sc.Mixes = *mixes
	}
	if *warmup != 0 {
		sc.Warmup = *warmup
	}
	if *measure != 0 {
		sc.Measure = *measure
	}

	var ids []string
	if *run == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	// SIGINT/SIGTERM cancel the context; the cycle loops notice within a
	// few thousand cycles and everything completed so far is flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	session := experiments.NewSessionContext(ctx, sc)
	if *resume && *cacheDir == "" {
		*cacheDir = ".ipcp-cache"
	}
	if *cacheDir != "" {
		if err := session.SetCacheDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "checkpointing results to", *cacheDir)
	}

	start := time.Now()
	rep, err := experiments.RunIDs(ctx, session, ids,
		func(res experiments.ExperimentResult, done bool) {
			switch {
			case !done:
				fmt.Fprintf(os.Stderr, "running %s (%s)...", res.ID, res.Title)
			case res.Err != nil:
				fmt.Fprintf(os.Stderr, " failed after %.1fs: %v\n", res.Elapsed.Seconds(), res.Err)
			default:
				fmt.Fprintf(os.Stderr, " done in %.1fs\n", res.Elapsed.Seconds())
			}
		})
	if err != nil {
		// Only an unknown experiment id aborts before the loop finishes.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var b strings.Builder
	for _, res := range rep.Results {
		if res.Err != nil {
			continue
		}
		b.WriteString(res.Table.Markdown())
		if e, err := experiments.ByID(res.ID); err == nil && e.Paper != "" {
			b.WriteString("\nPaper: " + e.Paper + "\n")
		}
		b.WriteString("\n")
	}
	if failed := rep.Failed(); len(failed) > 0 {
		b.WriteString("### failed experiments\n\n")
		for _, res := range failed {
			fmt.Fprintf(&b, "- %s: %v\n", res.ID, res.Err)
		}
		b.WriteString("\n")
	}
	if rep.Interrupted {
		b.WriteString("> run interrupted: the tables above are the completed subset; " +
			"rerun with the same -cache-dir to resume.\n")
	}

	if *out == "" {
		fmt.Print(b.String())
	} else if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	} else {
		fmt.Fprintln(os.Stderr, "wrote", *out)
	}
	fmt.Fprintf(os.Stderr, "%d experiments in %.1fs (%d simulations executed)\n",
		len(rep.Results), time.Since(start).Seconds(), session.Executed())

	switch {
	case rep.Interrupted:
		os.Exit(130)
	case len(rep.Failed()) > 0:
		os.Exit(1)
	}
}
