package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchAveragesRepeatedRuns(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkSimulatorThroughput-8   	      10	 100000 ns/op	  2000000 instr/s	    64 B/op	       2 allocs/op
BenchmarkSimulatorThroughput-8   	      10	 300000 ns/op	  4000000 instr/s	   192 B/op	       4 allocs/op
BenchmarkOther-8                 	     100	   5000 ns/op
PASS
`)
	es, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("parsed %d entries, want 2: %+v", len(es), es)
	}
	e := es[0]
	if e.Bench != "BenchmarkSimulatorThroughput" {
		t.Fatalf("bench name %q", e.Bench)
	}
	if e.NsPerOp != 200000 || e.InstrPerSec != 3000000 || e.BytesPerOp != 128 || e.AllocsPerOp != 3 {
		t.Fatalf("averaging wrong: %+v", e)
	}
	if es[1].Bench != "BenchmarkOther" || es[1].NsPerOp != 5000 {
		t.Fatalf("second entry wrong: %+v", es[1])
	}
}

func TestBenchName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo-128":    "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
		"BenchmarkFigure13-4": "BenchmarkFigure13",
	} {
		if got := benchName(in); got != want {
			t.Errorf("benchName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckProvenanceRejectsConflictingNotes(t *testing.T) {
	hist := []Entry{
		{Bench: "BenchmarkX", Commit: "abc1234", Note: "baseline"},
		{Bench: "BenchmarkY", Commit: "abc1234", Note: "baseline"},
	}
	fresh := []Entry{{Bench: "BenchmarkX"}}

	if err := checkProvenance(hist, fresh, "abc1234", "optimized"); err == nil {
		t.Fatal("conflicting note at the same (bench, commit) must be rejected")
	}
	// Same note: re-recording more samples of the same configuration.
	if err := checkProvenance(hist, fresh, "abc1234", "baseline"); err != nil {
		t.Fatalf("same note must be allowed: %v", err)
	}
	// New commit: no conflict possible.
	if err := checkProvenance(hist, fresh, "def5678", "optimized"); err != nil {
		t.Fatalf("new commit must be allowed: %v", err)
	}
	// No VCS identity (e.g. tarball checkout): nothing to conflict on.
	if err := checkProvenance(hist, fresh, "", "optimized"); err != nil {
		t.Fatalf("empty commit must be allowed: %v", err)
	}
	// A bench the history has never seen at this commit is fine.
	if err := checkProvenance(hist, []Entry{{Bench: "BenchmarkZ"}}, "abc1234", "optimized"); err != nil {
		t.Fatalf("new bench at existing commit must be allowed: %v", err)
	}
}

func TestHistoryProvenanceConsistent(t *testing.T) {
	// The checked-in history must satisfy the invariant benchrecord now
	// enforces: one note per (bench, commit).
	hist, err := loadHistory("../../BENCH_throughput.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("checked-in history is empty")
	}
	notes := map[[2]string]string{}
	for _, e := range hist {
		k := [2]string{e.Bench, e.Commit}
		if prev, ok := notes[k]; ok && prev != e.Note {
			t.Errorf("%s @ %s recorded with conflicting notes %q and %q", e.Bench, e.Commit, prev, e.Note)
		}
		notes[k] = e.Note
	}
}

func TestGateRatio(t *testing.T) {
	fresh := []Entry{
		{Bench: "BenchmarkFast", InstrPerSec: 3000},
		{Bench: "BenchmarkSlow", InstrPerSec: 1000},
	}
	var out bytes.Buffer
	if !gateRatio(&out, fresh, "BenchmarkFast", "BenchmarkSlow", 2.0) {
		t.Fatalf("3x ratio must pass a 2x floor:\n%s", out.String())
	}
	out.Reset()
	if gateRatio(&out, fresh, "BenchmarkFast", "BenchmarkSlow", 4.0) {
		t.Fatal("3x ratio must fail a 4x floor")
	}
	if !strings.Contains(out.String(), "RATIO REGRESSION") {
		t.Fatalf("missing RATIO REGRESSION marker:\n%s", out.String())
	}
	out.Reset()
	if gateRatio(&out, fresh, "BenchmarkFast", "BenchmarkMissing", 2.0) {
		t.Fatal("missing denominator must fail, not pass silently")
	}
}

func TestDoDiffMissingHistoryIsGraceful(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_throughput.json")
	fresh := []Entry{{Bench: "BenchmarkX", NsPerOp: 100}}
	if !doDiff(path, fresh, 0.10) {
		t.Fatal("missing history must not fail the diff")
	}
}

func TestDiffEntriesNoBaselineForBenchmark(t *testing.T) {
	var out bytes.Buffer
	hist := []Entry{{Bench: "BenchmarkOld", NsPerOp: 100, InstrPerSec: 1000}}
	fresh := []Entry{{Bench: "BenchmarkNew", NsPerOp: 50}}
	if !diffEntries(&out, hist, fresh, 0.10) {
		t.Fatal("benchmark without a baseline must not fail the diff")
	}
	if !strings.Contains(out.String(), "(no baseline)") {
		t.Fatalf("missing '(no baseline)' marker in output:\n%s", out.String())
	}
}

func TestDiffEntriesFlagsRegression(t *testing.T) {
	var out bytes.Buffer
	hist := []Entry{{Bench: "BenchmarkX", NsPerOp: 100, InstrPerSec: 1000, When: "t0"}}
	fresh := []Entry{{Bench: "BenchmarkX", NsPerOp: 150, InstrPerSec: 800}}
	if diffEntries(&out, hist, fresh, 0.10) {
		t.Fatal("20%% instr/s drop must fail at 10%% tolerance")
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION marker:\n%s", out.String())
	}
	out.Reset()
	fresh[0].InstrPerSec = 950
	if !diffEntries(&out, hist, fresh, 0.10) {
		t.Fatalf("5%%%% drop within tolerance flagged:\n%s", out.String())
	}
}
