// Command benchrecord turns `go test -bench` output into a tracked
// benchmark history, so simulator-throughput regressions show up in
// review instead of in a bisect six months later.
//
//	go test -run '^$' -bench SimulatorThroughput -benchmem . | benchrecord -record BENCH_throughput.json
//	go test -run '^$' -bench SimulatorThroughput -benchmem . | benchrecord -diff BENCH_throughput.json
//
// -record appends one entry per benchmark to the JSON history (multiple
// -count runs of the same benchmark are averaged first). -diff compares
// the fresh run against the most recent recorded entry for each
// benchmark, benchstat-style, and exits non-zero when instr/s regresses
// by more than the -tolerance fraction.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one recorded benchmark measurement. InstrPerSec is zero for
// benchmarks that do not report the custom instr/s metric.
type Entry struct {
	Bench       string  `json:"bench"`
	When        string  `json:"when"`
	Commit      string  `json:"commit,omitempty"`
	Note        string  `json:"note,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	InstrPerSec float64 `json:"instr_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	var (
		record    = flag.String("record", "", "append parsed results to this JSON history file")
		diff      = flag.String("diff", "", "compare parsed results against the latest entries in this JSON history file")
		note      = flag.String("note", "", "free-form note stored with -record entries")
		tolerance = flag.Float64("tolerance", 0.10, "-diff: fail when instr/s drops by more than this fraction")
		gateFast  = flag.String("gate-fast", "", "-diff: benchmark whose instr/s must exceed -gate-slow's by -gate-min (within-run ratio, immune to host drift)")
		gateSlow  = flag.String("gate-slow", "", "-diff: the ratio gate's denominator benchmark")
		gateMin   = flag.Float64("gate-min", 2.0, "-diff: minimum instr/s ratio of -gate-fast over -gate-slow")
	)
	flag.Parse()
	if (*record == "") == (*diff == "") {
		fmt.Fprintln(os.Stderr, "benchrecord: exactly one of -record or -diff is required")
		os.Exit(2)
	}

	fresh, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchrecord: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *record != "" {
		if err := doRecord(*record, fresh, *note); err != nil {
			fmt.Fprintln(os.Stderr, "benchrecord:", err)
			os.Exit(1)
		}
		return
	}
	ok := doDiff(*diff, fresh, *tolerance)
	if *gateFast != "" {
		ok = gateRatio(os.Stdout, fresh, *gateFast, *gateSlow, *gateMin) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

// gateRatio checks a within-run instr/s ratio between two benchmarks
// from the same `go test -bench` invocation. Host speed drift between
// record time and diff time is common-mode inside one run, so the
// ratio stays stable on machines where absolute wall-clock does not —
// it is the right gate for a shared or throttled host.
func gateRatio(w io.Writer, fresh []Entry, fast, slow string, min float64) bool {
	var f, s *Entry
	for i := range fresh {
		switch fresh[i].Bench {
		case fast:
			f = &fresh[i]
		case slow:
			s = &fresh[i]
		}
	}
	if f == nil || s == nil || f.InstrPerSec == 0 || s.InstrPerSec == 0 {
		fmt.Fprintf(w, "RATIO GATE: %s/%s not computable (both benchmarks must run and report instr/s)\n", fast, slow)
		return false
	}
	ratio := f.InstrPerSec / s.InstrPerSec
	fmt.Fprintf(w, "ratio %s / %s = %.2fx (floor %.2fx)\n", fast, slow, ratio, min)
	if ratio < min {
		fmt.Fprintf(w, "  RATIO REGRESSION: %.2fx below the %.2fx floor\n", ratio, min)
		return false
	}
	return true
}

// parseBench reads `go test -bench` output and averages repeated runs of
// the same benchmark (a -count run emits one line per repetition).
func parseBench(r io.Reader) ([]Entry, error) {
	sums := map[string]*Entry{}
	counts := map[string]int{}
	var order []string

	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  T ns/op  [V instr/s]  [B B/op]  [A allocs/op]
		if len(fields) < 4 {
			continue
		}
		name := benchName(fields[0])
		e, ok := sums[name]
		if !ok {
			e = &Entry{Bench: name}
			sums[name] = e
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp += v
			case "instr/s":
				e.InstrPerSec += v
			case "B/op":
				e.BytesPerOp += v
			case "allocs/op":
				e.AllocsPerOp += v
			}
		}
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make([]Entry, 0, len(order))
	for _, name := range order {
		e := sums[name]
		n := float64(counts[name])
		e.NsPerOp /= n
		e.InstrPerSec /= n
		e.BytesPerOp /= n
		e.AllocsPerOp /= n
		out = append(out, *e)
	}
	return out, nil
}

// benchName strips the -GOMAXPROCS suffix go test appends to benchmark
// names (Benchmark...-8), so histories compare across machines.
func benchName(s string) string {
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i]
		}
	}
	return s
}

func loadHistory(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var hist []Entry
	if err := json.Unmarshal(data, &hist); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return hist, nil
}

func doRecord(path string, fresh []Entry, note string) error {
	hist, err := loadHistory(path)
	if err != nil {
		return err
	}
	when := time.Now().UTC().Format(time.RFC3339)
	commit := gitRev()
	if err := checkProvenance(hist, fresh, commit, note); err != nil {
		return err
	}
	for _, e := range fresh {
		e.When, e.Commit, e.Note = when, commit, note
		hist = append(hist, e)
		fmt.Printf("recorded %-40s %12.0f ns/op", e.Bench, e.NsPerOp)
		if e.InstrPerSec > 0 {
			fmt.Printf("  %10.0f instr/s", e.InstrPerSec)
		}
		fmt.Println()
	}
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkProvenance refuses to append an entry whose (bench, commit)
// pair already exists in the history under a different note. Two notes
// at one commit means at least one of them describes a working tree
// the commit hash does not identify — exactly the mislabeling this
// history exists to prevent. Re-recording with the same note (more
// samples of the same configuration) stays allowed.
func checkProvenance(hist, fresh []Entry, commit, note string) error {
	if commit == "" {
		return nil // no VCS identity to conflict on
	}
	notes := map[string]string{}
	for _, e := range hist {
		if e.Commit == commit {
			notes[e.Bench] = e.Note
		}
	}
	for _, e := range fresh {
		if prev, ok := notes[e.Bench]; ok && prev != note {
			return fmt.Errorf("%s already recorded at commit %s with note %q; "+
				"refusing to add conflicting note %q (commit your changes so the "+
				"hash identifies what was measured)", e.Bench, commit, prev, note)
		}
	}
	return nil
}

// doDiff prints a benchstat-style comparison and reports whether every
// benchmark with a recorded baseline stayed within tolerance. A missing
// or empty history is not a failure — a fresh checkout has no baseline
// yet — but it gets an explicit notice instead of a silent pass.
func doDiff(path string, fresh []Entry, tolerance float64) bool {
	hist, err := loadHistory(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		return false
	}
	if len(hist) == 0 {
		fmt.Fprintf(os.Stderr, "benchrecord: no baseline history at %s; run 'make bench' to record one\n", path)
		return true
	}
	return diffEntries(os.Stdout, hist, fresh, tolerance)
}

// diffEntries is the comparison core of doDiff, split out so tests can
// drive it with in-memory histories.
func diffEntries(w io.Writer, hist, fresh []Entry, tolerance float64) bool {
	// Latest recorded entry per benchmark wins.
	base := map[string]Entry{}
	for _, e := range hist {
		base[e.Bench] = e
	}

	names := make([]string, 0, len(fresh))
	byName := map[string]Entry{}
	for _, e := range fresh {
		names = append(names, e.Bench)
		byName[e.Bench] = e
	}
	sort.Strings(names)

	ok := true
	fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	for _, name := range names {
		e := byName[name]
		b, have := base[name]
		if !have {
			fmt.Fprintf(w, "%-40s %14s %14.0f %8s  (no baseline)\n", name, "-", e.NsPerOp, "-")
			continue
		}
		fmt.Fprintf(w, "%-40s %12.0fns %12.0fns %+7.1f%%\n",
			name, b.NsPerOp, e.NsPerOp, pct(e.NsPerOp, b.NsPerOp))
		if e.InstrPerSec > 0 && b.InstrPerSec > 0 {
			delta := pct(e.InstrPerSec, b.InstrPerSec)
			fmt.Fprintf(w, "%-40s %11.0fi/s %11.0fi/s %+7.1f%%\n", "  instr/s", b.InstrPerSec, e.InstrPerSec, delta)
			if e.InstrPerSec < b.InstrPerSec*(1-tolerance) {
				fmt.Fprintf(w, "  REGRESSION: instr/s down %.1f%% (tolerance %.0f%%) vs %s\n",
					-delta, tolerance*100, b.When)
				ok = false
			}
		}
		if b.AllocsPerOp > 0 || e.AllocsPerOp > 0 {
			fmt.Fprintf(w, "%-40s %13.0fa %13.0fa\n", "  allocs/op", b.AllocsPerOp, e.AllocsPerOp)
		}
	}
	return ok
}

func pct(new, old float64) float64 {
	if old == 0 {
		return 0
	}
	return (new/old - 1) * 100
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
