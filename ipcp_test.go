package ipcp_test

import (
	"testing"

	"ipcp"
)

func TestFacadeRunSingle(t *testing.T) {
	res, err := ipcp.Run(ipcp.RunConfig{
		Workload:      "bwaves-98",
		L1DPrefetcher: "ipcp",
		L2Prefetcher:  "ipcp",
		Warmup:        10_000,
		Measure:       30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC[0] <= 0 {
		t.Fatalf("IPC = %f", res.IPC[0])
	}
	if res.L1D[0].PrefetchIssued == 0 {
		t.Error("IPCP issued no prefetches through the facade")
	}
}

func TestFacadeMix(t *testing.T) {
	res, err := ipcp.Run(ipcp.RunConfig{
		Mix:           []string{"lbm-94", "omnetpp-17"},
		L1DPrefetcher: "ipcp",
		Warmup:        5_000,
		Measure:       15_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 2 {
		t.Fatalf("cores = %d", len(res.IPC))
	}
}

func TestFacadeSpeedup(t *testing.T) {
	sp, err := ipcp.Speedup("fotonik3d-7084", "ipcp", "ipcp", 20_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.2 {
		t.Errorf("IPCP speedup on fotonik-like = %.3f, want > 1.2", sp)
	}
}

func TestFacadeCustomPrefetcher(t *testing.T) {
	cfg := ipcp.DefaultL1Config()
	cfg.EnableGS = false
	res, err := ipcp.Run(ipcp.RunConfig{
		Workload:  "gcc-2226",
		CustomL1D: ipcp.NewL1IPCP(cfg),
		Warmup:    5_000,
		Measure:   15_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.L1D[0].IssuedByClass[ipcp.ClassGS] != 0 {
		t.Error("GS disabled but issued")
	}
}

func TestFacadeLists(t *testing.T) {
	if len(ipcp.Workloads()) < 30 {
		t.Error("workload list too small")
	}
	if len(ipcp.MemoryIntensiveWorkloads()) < 20 {
		t.Error("memory-intensive list too small")
	}
	found := false
	for _, p := range ipcp.Prefetchers() {
		if p == "ipcp" {
			found = true
		}
	}
	if !found {
		t.Error("ipcp missing from prefetcher registry")
	}
}

func TestFacadeStorage(t *testing.T) {
	st := ipcp.StorageBudget(ipcp.DefaultL1Config(), ipcp.DefaultL2Config())
	if st.TotalBytes() != 895 {
		t.Errorf("storage = %d bytes, want 895", st.TotalBytes())
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := ipcp.Run(ipcp.RunConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := ipcp.Run(ipcp.RunConfig{Workload: "not-a-trace"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ipcp.Run(ipcp.RunConfig{Workload: "lbm-94", L1DPrefetcher: "bogus"}); err == nil {
		t.Error("unknown prefetcher accepted")
	}
}
