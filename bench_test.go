// Benchmarks: one testing.B target per paper table/figure, runnable as
//
//	go test -bench=Fig8 -benchmem
//
// Each bench runs its experiment at the Quick scale and reports the
// headline numbers as custom benchmark metrics (e.g. the IPCP geomean
// speedup), so `go test -bench=.` regenerates every artifact's shape
// in one sweep. EXPERIMENTS.md records a larger-scale run.
package ipcp_test

import (
	"testing"

	"ipcp/internal/experiments"
	"ipcp/internal/sim"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// benchScale trims the Quick scale a little further so the full bench
// sweep stays tractable.
var benchScale = experiments.Scale{
	Warmup:    10_000,
	Measure:   30_000,
	MaxTraces: 5,
	Mixes:     2,
	Seed:      1,
}

// runExperiment executes one experiment per b.N iteration and reports
// selected row values as metrics.
func runExperiment(b *testing.B, id string, metrics map[string]metricRef) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchScale)
		tab, err := e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for name, ref := range metrics {
				row, ok := tab.Find(ref.row)
				if !ok {
					b.Fatalf("%s: row %q missing", id, ref.row)
				}
				col := ref.col
				if col >= len(row.Values) {
					b.Fatalf("%s: row %q has %d cols", id, ref.row, len(row.Values))
				}
				if col < 0 {
					col = len(row.Values) + col
				}
				b.ReportMetric(row.Values[col], name)
			}
		}
	}
}

type metricRef struct {
	row string
	col int // negative = from the end
}

func BenchmarkFig1(b *testing.B) {
	runExperiment(b, "fig1", map[string]metricRef{
		"mlop-at-L1":     {"mlop", 2},
		"mlop-at-L2":     {"mlop", 0},
		"ipstride-at-L1": {"ipstride", 2},
	})
}

func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "fig7", map[string]metricRef{
		"ipcp-geomean": {"geomean", -1},
		"nl-geomean":   {"geomean", 0},
	})
}

func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8", map[string]metricRef{
		"ipcp-geomean-mi":   {"geomean (mem-intensive)", -1},
		"ipcp-geomean-full": {"geomean (full suite)", -1},
	})
}

func BenchmarkFig9(b *testing.B) {
	runExperiment(b, "fig9", map[string]metricRef{
		"baseline-L1-MPKI": {"no-prefetch", 0},
		"ipcp-L1-MPKI":     {"IPCP", 0},
	})
}

func BenchmarkFig10(b *testing.B) {
	runExperiment(b, "fig10", map[string]metricRef{
		"cov-L1":  {"average", 0},
		"cov-L2":  {"average", 1},
		"cov-LLC": {"average", 2},
	})
}

func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "fig11", map[string]metricRef{
		"covered":       {"average", 0},
		"overpredicted": {"average", 2},
	})
}

func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12", map[string]metricRef{
		"share-CS": {"overall", 0},
		"share-GS": {"overall", 2},
	})
}

func BenchmarkFig13a(b *testing.B) {
	runExperiment(b, "fig13a", map[string]metricRef{
		"full-bouquet": {"IPCP L1 (full bouquet)", 0},
		"with-l2":      {"IPCP L1+L2", 0},
		"cs-only":      {"CS only", 0},
	})
}

func BenchmarkFig13b(b *testing.B) {
	runExperiment(b, "fig13b", map[string]metricRef{
		"paper-order": {"GS>CS>CPLX>NL (paper)", 0},
		"no-metadata": {"paper order, metadata off", 0},
	})
}

func BenchmarkFig14a(b *testing.B) {
	runExperiment(b, "fig14a", map[string]metricRef{
		"ipcp-geomean": {"geomean", -1},
	})
}

func BenchmarkFig14b(b *testing.B) {
	runExperiment(b, "fig14b", map[string]metricRef{
		"ipcp-geomean": {"geomean", -1},
	})
}

func BenchmarkFig15(b *testing.B) {
	runExperiment(b, "fig15", map[string]metricRef{
		"ipcp-overall": {"overall geomean", -1},
	})
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "tab1", map[string]metricRef{
		"total-bytes": {"total", 0},
	})
}

func BenchmarkTable4(b *testing.B) {
	runExperiment(b, "tab4", map[string]metricRef{
		"ipcp-cov-L1": {"IPCP", 0},
		"ipcp-acc-L1": {"IPCP", 3},
	})
}

func BenchmarkSensRepl(b *testing.B) {
	runExperiment(b, "sens-repl", map[string]metricRef{
		"lru":  {"lru", 0},
		"ship": {"ship", 0},
	})
}

func BenchmarkSensCache(b *testing.B) {
	runExperiment(b, "sens-cache", map[string]metricRef{
		"paper-config": {"L1D 48KB, L2 512KB, LLC 2MB (paper)", 0},
	})
}

func BenchmarkSensDRAM(b *testing.B) {
	runExperiment(b, "sens-dram", map[string]metricRef{
		"ipcp-3.2GBps":  {"3.2 GB/s", 0},
		"ipcp-25.6GBps": {"25.6 GB/s", 0},
	})
}

func BenchmarkSensPQ(b *testing.B) {
	runExperiment(b, "sens-pq", map[string]metricRef{
		"pq2-mshr4":  {"PQ=2 MSHR=4", 0},
		"pq8-mshr16": {"PQ=8 MSHR=16", 0},
	})
}

func BenchmarkSensTables(b *testing.B) {
	runExperiment(b, "sens-tables", map[string]metricRef{
		"x1":  {"x1 tables", 0},
		"x16": {"x16 tables", 0},
	})
}

func BenchmarkAblRRFilter(b *testing.B) {
	runExperiment(b, "abl-rr", map[string]metricRef{
		"rr-on":  {"RR filter on (paper)", 0},
		"rr-off": {"RR filter off", 0},
	})
}

func BenchmarkAblThrottle(b *testing.B) {
	runExperiment(b, "abl-throttle", map[string]metricRef{
		"paper-watermarks": {"high=0.75 low=0.40", 0},
		"throttle-off":     {"throttling off", 0},
	})
}

func BenchmarkAblRegionSize(b *testing.B) {
	runExperiment(b, "abl-region", map[string]metricRef{
		"region-2KB": {"2048B regions", 0},
	})
}

func BenchmarkAblCPLXDegree(b *testing.B) {
	runExperiment(b, "abl-degree", map[string]metricRef{
		"degree-3": {"degree 3", 0},
	})
}

func BenchmarkAblSignature(b *testing.B) {
	runExperiment(b, "abl-sig", map[string]metricRef{
		"sig-7bit": {"7-bit signature", 0},
	})
}

// BenchmarkSimulatorThroughput measures raw simulator speed
// (instructions simulated per wall second), the practical limit on
// experiment scale. Each iteration builds and runs a whole system, so
// per-op allocations include construction; see
// BenchmarkSimulatorThroughputSteady for the steady-state inner loop.
func BenchmarkSimulatorThroughput(b *testing.B) {
	s := experiments.NewSession(experiments.Scale{Warmup: 5_000, Measure: 50_000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(experiments.RunSpec{
			Workloads: []string{"lbm-94"}, L1D: "ipcp", L2: "ipcp",
			Seed: int64(i + 2), // defeat the memoizer
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(55_000*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkSimulatorThroughputSteady measures the simulation inner loop
// in steady state: one system is built and warmed outside the timer,
// and each iteration advances it by a fixed instruction count. With the
// request pool, the fill ring, the fixed MSHR table, and the load ring
// in place this reports ~0 allocs/op — the hot path recycles
// everything it touches.
func BenchmarkSimulatorThroughputSteady(b *testing.B) {
	const instrPerOp = 10_000
	cfg := sim.PaperConfig(1)
	cfg.L1DPrefetcher = sim.PrefetcherSpec{Name: "ipcp"}
	cfg.L2Prefetcher = sim.PrefetcherSpec{Name: "ipcp"}
	w, err := workload.Named("lbm-94")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := sim.Build(cfg, []trace.Stream{w.New(1)})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pools, rings, and page tables past their growth phase.
	if err := sys.Advance(50_000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Advance(instrPerOp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(instrPerOp*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// --- sweep amortization ---------------------------------------------------

// sweepBenchScale reflects sweep methodology: a long shared warmup
// prefix (4x the Default scale's) and a short per-point measure window
// — a sweep's value is many configurations, not long measurements, so
// the warmup prefix dominates and is exactly what shared-warmup
// forking amortizes.
var sweepBenchScale = experiments.Scale{Warmup: 200_000, Measure: 50_000, Seed: 1}

// sweepBenchSpecs is one warmup group of the prefetcher grid: twelve
// configurations over a single (trace, scale, seed) prefix, so the
// shared-warmup scheduler runs one warmup and forks twelve measures.
func sweepBenchSpecs() []experiments.RunSpec {
	var specs []experiments.RunSpec
	for _, l1 := range []string{"", "nl", "ipstride", "ipcp", "spp", "bop"} {
		for _, l2 := range []string{"", "ipcp"} {
			specs = append(specs, experiments.RunSpec{
				Workloads: []string{"mcf-994"}, L1D: l1, L2: l2,
			})
		}
	}
	return specs
}

// runSweepBench drives the grid sequentially so the two benchmarks
// compare total compute, the quantity that bounds wall-clock once a
// real grid exceeds the core count. The instr/s metric is the rate of
// *delivered* sweep work — every grid point counts warmup+measure,
// whether the warmup was simulated or forked — so the shared variant's
// gain shows up in the metric, not just in ns/op.
func runSweepBench(b *testing.B, run func(*experiments.Session, experiments.RunSpec) (*sim.Result, error)) {
	b.Helper()
	specs := sweepBenchSpecs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(sweepBenchScale) // fresh session: no memo, no resident snapshots
		for _, spec := range specs {
			if _, err := run(s, spec); err != nil {
				b.Fatal(err)
			}
		}
	}
	work := float64(len(specs)) * float64(sweepBenchScale.Warmup+sweepBenchScale.Measure)
	b.ReportMetric(work*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkSweepColdWarmup is the baseline: every grid point re-runs
// the identical warmup prefix (K·(W+M) simulated instructions).
func BenchmarkSweepColdWarmup(b *testing.B) {
	runSweepBench(b, (*experiments.Session).Run)
}

// BenchmarkSweepSharedWarmup runs the same grid through the
// shared-warmup scheduler: one warmup leader, eleven forks from the
// resident snapshot (W + K·M simulated instructions). The ratio to
// BenchmarkSweepColdWarmup is the sweep amortization factor.
func BenchmarkSweepSharedWarmup(b *testing.B) {
	runSweepBench(b, (*experiments.Session).RunShared)
}

func BenchmarkAblTemporal(b *testing.B) {
	runExperiment(b, "abl-temporal", map[string]metricRef{
		"ipcp":          {"IPCP (paper)", 0},
		"ipcp-temporal": {"IPCP + temporal (1024 entries)", 0},
	})
}
