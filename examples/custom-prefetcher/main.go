// Custom prefetcher: the framework is modular — "a new access pattern
// can be added to the existing classes as a new class seamlessly"
// (paper §III). This example plugs a user-written prefetcher into the
// L1-D through the public Prefetcher interface and compares it with
// IPCP: a naive "always prefetch ±1" neighbour prefetcher.
package main

import (
	"fmt"
	"log"

	"ipcp"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

// neighbour prefetches the two adjacent lines of every demand miss.
// It implements ipcp.Prefetcher (= prefetch.Prefetcher).
type neighbour struct{}

func (neighbour) Name() string { return "neighbour" }

func (neighbour) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	if !a.Type.IsDemand() || a.Hit {
		return
	}
	v := a.VAddr
	if v == 0 {
		v = a.Addr
	}
	for _, d := range []int64{1, -1} {
		cand := memsys.Addr(int64(memsys.BlockNumber(v))+d) << memsys.BlockBits
		if memsys.SamePage(v, cand) {
			iss.Issue(prefetch.Candidate{Addr: cand, IP: a.IP})
		}
	}
}

func (neighbour) Fill(int64, *prefetch.FillEvent) {}
func (neighbour) Cycle(int64)                     {}

func main() {
	const workload = "fotonik3d-7084"

	base := must(ipcp.Run(ipcp.RunConfig{Workload: workload, Warmup: 30_000, Measure: 100_000}))
	naive := must(ipcp.Run(ipcp.RunConfig{
		Workload: workload, CustomL1D: neighbour{}, Warmup: 30_000, Measure: 100_000,
	}))
	paper := must(ipcp.Run(ipcp.RunConfig{
		Workload: workload, L1DPrefetcher: "ipcp", L2Prefetcher: "ipcp",
		Warmup: 30_000, Measure: 100_000,
	}))

	fmt.Printf("workload %s\n", workload)
	fmt.Printf("  baseline:            IPC %.3f\n", base.IPC[0])
	fmt.Printf("  custom neighbour:    IPC %.3f (%.2fx), accuracy %.2f\n",
		naive.IPC[0], naive.IPC[0]/base.IPC[0], naive.L1D[0].Accuracy())
	fmt.Printf("  IPCP (paper):        IPC %.3f (%.2fx), accuracy %.2f\n",
		paper.IPC[0], paper.IPC[0]/base.IPC[0], paper.L1D[0].Accuracy())

	// A tuned IPCP variant: GS-only with a deeper degree, as a taste
	// of the config surface.
	cfg := ipcp.DefaultL1Config()
	cfg.EnableCS, cfg.EnableCPLX, cfg.EnableNL = false, false, false
	cfg.DegreeGS = 8
	gsOnly := must(ipcp.Run(ipcp.RunConfig{
		Workload: workload, CustomL1D: ipcp.NewL1IPCP(cfg), Warmup: 30_000, Measure: 100_000,
	}))
	fmt.Printf("  GS-only, degree 8:   IPC %.3f (%.2fx)\n",
		gsOnly.IPC[0], gsOnly.IPC[0]/base.IPC[0])
}

func must(r *ipcp.Result, err error) *ipcp.Result {
	if err != nil {
		log.Fatal(err)
	}
	return r
}
