// Quickstart: run one memory-intensive workload with and without IPCP
// and print the speedup — the library's one-minute tour.
package main

import (
	"fmt"
	"log"

	"ipcp"
)

func main() {
	const workload = "gcc-2226" // a streaming, GS-class-friendly trace

	baseline, err := ipcp.Run(ipcp.RunConfig{
		Workload: workload,
		Warmup:   50_000,
		Measure:  200_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	with, err := ipcp.Run(ipcp.RunConfig{
		Workload:      workload,
		L1DPrefetcher: "ipcp",
		L2Prefetcher:  "ipcp",
		Warmup:        50_000,
		Measure:       200_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:      %s\n", workload)
	fmt.Printf("baseline IPC:  %.3f\n", baseline.IPC[0])
	fmt.Printf("IPCP IPC:      %.3f\n", with.IPC[0])
	fmt.Printf("speedup:       %.2fx\n", with.IPC[0]/baseline.IPC[0])
	fmt.Printf("L1 demand misses: %d -> %d (coverage %.0f%%)\n",
		baseline.L1D[0].DemandMisses(), with.L1D[0].DemandMisses(),
		100*(1-float64(with.L1D[0].DemandMisses())/float64(baseline.L1D[0].DemandMisses())))

	st := ipcp.StorageBudget(ipcp.DefaultL1Config(), ipcp.DefaultL2Config())
	fmt.Printf("IPCP hardware budget: %d bytes (paper Table I: 895)\n", st.TotalBytes())
}
