// Multicore mix: the paper's weighted-speedup methodology on a 4-core
// heterogeneous mix — a streaming trace, a strided trace, a pointer
// chaser, and a compute-bound filler sharing the LLC and DRAM.
package main

import (
	"fmt"
	"log"

	"ipcp"
)

func main() {
	mix := []string{"lbm-94", "bwaves-98", "mcf-994", "exchange2-387"}

	fmt.Println("mix:", mix)
	base := runMix(mix, "", "")
	with := runMix(mix, "ipcp", "ipcp")

	var wsBase, wsIPCP float64
	fmt.Printf("%-16s %12s %12s %10s\n", "core/workload", "IPC (none)", "IPC (IPCP)", "speedup")
	for i, w := range mix {
		fmt.Printf("%d %-14s %12.3f %12.3f %9.2fx\n",
			i, w, base.IPC[i], with.IPC[i], with.IPC[i]/base.IPC[i])
		// Normalizing each core by its own baseline IPC gives the
		// relative weighted-speedup improvement.
		wsBase += 1.0
		wsIPCP += with.IPC[i] / base.IPC[i]
	}
	fmt.Printf("\nweighted speedup improvement: %.1f%%\n", (wsIPCP/wsBase-1)*100)
	fmt.Printf("shared LLC misses: %d -> %d\n", base.LLC.DemandMisses(), with.LLC.DemandMisses())
	fmt.Printf("DRAM bus utilization: %.0f%% -> %.0f%%\n",
		base.DRAM.BusUtilization()*100, with.DRAM.BusUtilization()*100)
}

func runMix(mix []string, l1, l2 string) *ipcp.Result {
	res, err := ipcp.Run(ipcp.RunConfig{
		Mix:           mix,
		L1DPrefetcher: l1,
		L2Prefetcher:  l2,
		Warmup:        20_000,
		Measure:       60_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
