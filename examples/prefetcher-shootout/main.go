// Prefetcher shootout: compare the paper's Table III multi-level
// combinations on a few representative traces — a miniature of
// Figure 8.
package main

import (
	"fmt"
	"log"
	"math"

	"ipcp"
)

type combo struct {
	name         string
	l1d, l2, llc string
}

func main() {
	combos := []combo{
		{"no-prefetch", "", "", ""},
		{"SPP+Perc+DSPatch", "throttled-nl", "spp-ppf-dspatch", "nl-miss"},
		{"MLOP", "mlop", "nl", "nl-miss"},
		{"Bingo", "bingo", "nl", "nl-miss"},
		{"TSKID", "tskid", "spp", ""},
		{"IPCP", "ipcp", "ipcp", ""},
	}
	workloads := []string{
		"bwaves-98",      // constant stride (CS)
		"gcc-2226",       // dense streaming (GS)
		"mcf-1536",       // complex strides (CPLX)
		"omnetpp-17",     // irregular — everyone struggles
		"cactuBSSN-2421", // IP-table-thrashing outlier
	}

	fmt.Printf("%-16s", "")
	for _, c := range combos[1:] {
		fmt.Printf("%18s", c.name)
	}
	fmt.Println()

	geo := make([]float64, len(combos))
	for _, w := range workloads {
		base := run(w, combos[0])
		fmt.Printf("%-16s", w)
		for i, c := range combos[1:] {
			sp := run(w, c) / base
			geo[i+1] += math.Log(sp)
			fmt.Printf("%17.2fx", sp)
		}
		fmt.Println()
	}
	fmt.Printf("%-16s", "geomean")
	for i := range combos[1:] {
		fmt.Printf("%17.2fx", math.Exp(geo[i+1]/float64(len(workloads))))
	}
	fmt.Println()
}

func run(workload string, c combo) float64 {
	res, err := ipcp.Run(ipcp.RunConfig{
		Workload:      workload,
		L1DPrefetcher: c.l1d,
		L2Prefetcher:  c.l2,
		LLCPrefetcher: c.llc,
		Warmup:        30_000,
		Measure:       100_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.IPC[0]
}
