package ipcp_test

import (
	"fmt"

	"ipcp"
)

// ExampleStorageBudget reproduces the paper's Table I.
func ExampleStorageBudget() {
	st := ipcp.StorageBudget(ipcp.DefaultL1Config(), ipcp.DefaultL2Config())
	fmt.Printf("L1: %d bytes\n", st.L1Bytes())
	fmt.Printf("L2: %d bytes\n", st.L2Bytes())
	fmt.Printf("total: %d bytes\n", st.TotalBytes())
	// Output:
	// L1: 740 bytes
	// L2: 155 bytes
	// total: 895 bytes
}

// ExampleRun shows the one-call simulation API.
func ExampleRun() {
	res, err := ipcp.Run(ipcp.RunConfig{
		Workload:      "fotonik3d-7084",
		L1DPrefetcher: "ipcp",
		L2Prefetcher:  "ipcp",
		Warmup:        10_000,
		Measure:       30_000,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("simulated one core:", res.Cores == 1)
	fmt.Println("issued prefetches:", res.L1D[0].PrefetchIssued > 0)
	// Output:
	// simulated one core: true
	// issued prefetches: true
}

// ExampleRunConfig_mix runs a 2-core mix sharing the LLC and DRAM.
func ExampleRunConfig_mix() {
	res, err := ipcp.Run(ipcp.RunConfig{
		Mix:           []string{"lbm-94", "exchange2-387"},
		L1DPrefetcher: "ipcp",
		Warmup:        5_000,
		Measure:       10_000,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cores:", res.Cores)
	// Output:
	// cores: 2
}
